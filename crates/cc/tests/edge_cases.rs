//! Edge-case corpus for the C-subset semantics, with the interpreter as
//! executable spec: every case runs under both backends and must agree
//! exactly — byte-identical stdout + identical `InterpStats` on
//! success, identical error text on failure — and neither backend may
//! panic (a panic fails the test harness).

use hetero_cc::backend::{make_backend, BackendKind};
use hetero_cc::interp::{InterpStats, StreamIo};
use hetero_cc::parse::parse;

enum In {
    None,
    Lines(&'static [&'static str]),
    Kvs(&'static [(&'static str, &'static str)]),
}

fn make_io(input: &In) -> StreamIo {
    match input {
        In::None => StreamIo::lines(vec![]),
        In::Lines(ls) => StreamIo::lines(ls.iter().map(|l| l.as_bytes().to_vec()).collect()),
        In::Kvs(kvs) => StreamIo::kvs(
            kvs.iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                .collect(),
        ),
    }
}

fn run(kind: BackendKind, src: &str, input: &In) -> Result<(Vec<u8>, InterpStats), String> {
    let prog = parse(src).unwrap_or_else(|e| panic!("corpus case does not parse: {e}\n{src}"));
    let backend = make_backend(kind, &prog);
    let mut io = make_io(input);
    match backend.run_capped(&mut io, 1_000_000) {
        Ok(stats) => Ok((io.stdout, stats)),
        Err(e) => Err(e.to_string()),
    }
}

/// Assert exact agreement; returns interp's outcome for extra checks.
fn agree(name: &str, src: &str, input: &In) -> Result<(Vec<u8>, InterpStats), String> {
    let ri = run(BackendKind::Interp, src, input);
    let rn = run(BackendKind::Native, src, input);
    assert_eq!(ri, rn, "backends diverged on corpus case `{name}`:\n{src}");
    ri
}

#[test]
fn printf_precision_and_format_corners() {
    let cases: &[(&str, &str)] = &[
        (
            "prec_zero",
            r#"int main() { printf("x\t%.0f\n", 2.5); return 0; }"#,
        ),
        (
            "prec_wide",
            r#"int main() { printf("x\t%.10f\n", 1.0 / 3.0); return 0; }"#,
        ),
        (
            "prec_e",
            r#"int main() { printf("x\t%.3e|%.0e\n", 12345.678, 0.00042); return 0; }"#,
        ),
        (
            "g_default",
            r#"int main() { printf("x\t%g|%g|%g\n", 100000.0, 0.5, 0.0); return 0; }"#,
        ),
        (
            "percent_literal",
            r#"int main() { printf("100%%\t%d%%%d\n", 1, 2); return 0; }"#,
        ),
        // A conversion truncated by end-of-format renders a lone '%'
        // and stops consuming — nothing after it, no argument taken.
        (
            "truncated_conv",
            r#"int main() { printf("x%.3"); return 0; }"#,
        ),
        (
            "char_conv",
            r#"int main() { printf("c\t%c%c\n", 65, 10); return 0; }"#,
        ),
        (
            "length_mods",
            r#"int main() { printf("x\t%ld|%lf\n", 7, 2.5); return 0; }"#,
        ),
        (
            "return_value",
            r#"int main() { int n; n = printf("ab\n"); printf("n\t%d\n", n); return 0; }"#,
        ),
        (
            "no_newline_no_line",
            r#"int main() { printf("partial"); printf("\t%d", 1); return 0; }"#,
        ),
        (
            "int_conv_of_float",
            r#"int main() { printf("x\t%d\n", 7.9); return 0; }"#,
        ),
        (
            "f_conv_of_int",
            r#"int main() { printf("x\t%f\n", 3); return 0; }"#,
        ),
    ];
    for (name, src) in cases {
        let r = agree(name, src, &In::None);
        assert!(r.is_ok(), "case `{name}` should succeed: {r:?}");
    }
    // Error corners: same message from both backends.
    for (name, src) in [
        (
            "unsupported_conv",
            r#"int main() { printf("x%q\n", 1); return 0; }"#,
        ),
        (
            "width_unsupported",
            r#"int main() { printf("x%5d\n", 1); return 0; }"#,
        ),
        (
            "too_few_args",
            r#"int main() { printf("%d %d\n", 1); return 0; }"#,
        ),
        (
            "nonliteral_fmt",
            r#"int main() { char s[4]; printf(s); return 0; }"#,
        ),
        (
            "s_of_int",
            r#"int main() { printf("%s\n", 42); return 0; }"#,
        ),
        // `%` before a non-conversion byte (here `\n`) still scans as a
        // conversion: it consumes an argument slot, then faults.
        (
            "percent_newline",
            r#"int main() { printf("x\t%d%\n", 3); return 0; }"#,
        ),
    ] {
        let r = agree(name, src, &In::None);
        assert!(r.is_err(), "case `{name}` should fail: {r:?}");
    }
}

#[test]
fn lines_out_counts_embedded_newlines() {
    let src = r#"int main() { printf("a\nb\nc\n"); printf("no newline"); return 0; }"#;
    let (out, stats) = agree("multi_newline", src, &In::None).unwrap();
    assert_eq!(out, b"a\nb\nc\nno newline");
    assert_eq!(stats.lines_out, 3);
}

#[test]
fn scanf_partial_matches_and_conversions() {
    let kvs = In::Kvs(&[("alpha", "12"), ("beta", "x9"), ("gamma", ""), ("d", "-3")]);
    let cases: &[(&str, &str)] = &[
        // Fewer destinations than conversions: only args-1 convs run.
        (
            "fewer_dsts",
            r#"int main() { char k[16]; while (scanf("%s %d", k) != -1) printf("k\t%s\n", k); return 0; }"#,
        ),
        // Non-numeric and empty values parse to 0.
        (
            "lenient_ints",
            r#"int main() { char k[16]; int v; while (scanf("%s %d", k, &v) == 2) printf("%s\t%d\n", k, v); return 0; }"#,
        ),
        (
            "lenient_floats",
            r#"int main() { char k[16]; double v; while (scanf("%s %lf", k, &v) == 2) printf("%s\t%.2f\n", k, v); return 0; }"#,
        ),
        // %s into a tiny buffer truncates with NUL.
        (
            "tiny_buffer",
            r#"int main() { char k[3]; char v[3]; while (scanf("%s %s", k, v) == 2) printf("%s\t%s\n", k, v); return 0; }"#,
        ),
        // Return value is the match count; -1 only at end of input.
        (
            "match_count",
            r#"int main() { char k[16]; int v, n; while ((n = scanf("%s %d", k, &v)) != -1) printf("n\t%d\n", n); return 0; }"#,
        ),
    ];
    for (name, src) in cases {
        let r = agree(name, src, &kvs);
        assert!(r.is_ok(), "case `{name}` should succeed: {r:?}");
    }
    for (name, src, input) in [
        (
            "unsupported_conv",
            r#"int main() { char k[16]; int v; scanf("%s %x", k, &v); return 0; }"#,
            In::Kvs(&[("a", "1")]),
        ),
        (
            "scanf_on_lines",
            r#"int main() { char k[16]; int v; scanf("%s %d", k, &v); return 0; }"#,
            In::Lines(&["a 1"]),
        ),
        (
            "getline_on_kvs",
            r#"int main() { char *line; getline(&line, 0, 0); return 0; }"#,
            In::Kvs(&[("a", "1")]),
        ),
    ] {
        let r = agree(name, src, &input);
        assert!(r.is_err(), "case `{name}` should fail: {r:?}");
    }
}

#[test]
fn empty_and_whitespace_records() {
    let src = r#"
int main() {
  char *line; char w[8]; int rd, off, lp, n; n = 0;
  line = (char*) malloc(8);
  while ((rd = getline(&line, 0, 0)) != -1) {
    n++;
    off = 0;
    while ((lp = getWord(line, off, w, rd, 8)) != -1) { printf("w\t%s\n", w); off += lp; }
  }
  printf("records\t%d\n", n);
  return 0;
}
"#;
    let input = In::Lines(&["", "   ", "\t\t", "a", "  b  c  ", ""]);
    let (out, stats) = agree("empty_records", src, &input).unwrap();
    assert_eq!(stats.records_in, 6);
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("records\t6"), "{text}");
    assert_eq!(text.matches("w\t").count(), 3, "{text}");
}

#[test]
fn getline_after_exhaustion_stays_negative() {
    let src = r#"
int main() {
  char *line; int a, b, c;
  a = getline(&line, 0, 0);
  b = getline(&line, 0, 0);
  c = getline(&line, 0, 0);
  printf("r\t%d\t%d\t%d\n", a, b, c);
  return 0;
}
"#;
    let (out, stats) = agree("exhaustion", src, &In::Lines(&["only"])).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "r\t5\t-1\t-1\n");
    assert_eq!(stats.records_in, 1);
}

#[test]
fn token_scanning_corners() {
    let cases: &[(&str, &str, In)] = &[
        // maxLen 1 truncates every token to the empty string (room for
        // NUL only).
        (
            "maxlen_one",
            r#"int main() { char *l; char w[8]; int rd, off, lp; rd = getline(&l, 0, 0); off = 0; while ((lp = getTok(l, off, w, rd, 1)) != -1) { printf("t\t[%s]\t%d\n", w, lp); off += lp; } return 0; }"#,
            In::Lines(&["aa bb"]),
        ),
        // getWord separators: punctuation splits, apostrophes don't.
        (
            "word_separators",
            r#"int main() { char *l; char w[16]; int rd, off, lp; rd = getline(&l, 0, 0); off = 0; while ((lp = getWord(l, off, w, rd, 16)) != -1) { printf("w\t%s\n", w); off += lp; } return 0; }"#,
            In::Lines(&["don't,stop;me now-ok"]),
        ),
        // getTok keeps punctuation, splits on tabs/spaces only.
        (
            "tok_separators",
            r#"int main() { char *l; char w[16]; int rd, off, lp; rd = getline(&l, 0, 0); off = 0; while ((lp = getTok(l, off, w, rd, 16)) != -1) { printf("t\t%s\n", w); off += lp; } return 0; }"#,
            In::Lines(&["a,b\tc;d e"]),
        ),
        // Offset beyond the line yields -1 immediately.
        (
            "offset_past_end",
            r#"int main() { char *l; char w[8]; int rd; rd = getline(&l, 0, 0); printf("r\t%d\n", getWord(l, 99, w, rd, 8)); return 0; }"#,
            In::Lines(&["abc"]),
        ),
    ];
    for (name, src, input) in cases {
        let r = agree(name, src, input);
        assert!(r.is_ok(), "case `{name}` should succeed: {r:?}");
    }
}

#[test]
fn integer_wrap_and_division_edges() {
    // i64 wrap-around must be identical (wrapping semantics, no panic
    // in either backend even in debug builds).
    let src = r#"
int main() {
  int big, i;
  big = 9223372036854775807;
  printf("inc\t%d\n", big + 1);
  printf("mul\t%d\n", big * 2);
  big = -9223372036854775807 - 1;
  printf("negmin\t%d\n", -big);
  printf("divminneg\t%d\n", big / -1);
  printf("remminneg\t%d\n", big % -1);
  printf("abswrap\t%d\n", abs(big));
  i = big;
  i--;
  printf("decwrap\t%d\n", i);
  return 0;
}
"#;
    let (out, _) = agree("int_wrap", src, &In::None).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("inc\t-9223372036854775808"), "{text}");
    assert!(text.contains("negmin\t-9223372036854775808"), "{text}");
    assert!(text.contains("divminneg\t-9223372036854775808"), "{text}");
    assert!(text.contains("remminneg\t0"), "{text}");
    assert!(text.contains("decwrap\t9223372036854775807"), "{text}");

    for (name, src) in [
        ("div_zero", "int main() { int a; a = 1 / 0; return 0; }"),
        ("rem_zero", "int main() { int a; a = 1 % 0; return 0; }"),
        (
            "div_zero_var",
            "int main() { int a, b; b = 3; a = b / (b - 3); return 0; }",
        ),
        (
            "shift_masks",
            "int main() { printf(\"s\\t%d\\t%d\\n\", 1 << 65, 256 >> 66); return 0; }",
        ),
    ] {
        let r = agree(name, src, &In::None);
        if name == "shift_masks" {
            // Shifts mask the count to 6 bits in both backends.
            let (out, _) = r.unwrap();
            assert_eq!(String::from_utf8_lossy(&out), "s\t2\t64\n");
        } else {
            assert!(r.is_err(), "case `{name}` should fail: {r:?}");
        }
    }
}

#[test]
fn memory_and_bounds_edges() {
    for (name, src, should_fail) in [
        (
            "oob_read",
            "int main() { int a[3]; printf(\"%d\\n\", a[3]); return 0; }",
            true,
        ),
        (
            "oob_negative",
            "int main() { int a[3]; a[0-1] = 1; return 0; }",
            true,
        ),
        (
            "oob_2d",
            "int main() { double m[2][3]; m[1][3] = 1.0; return 0; }",
            true,
        ),
        // In-bounds access through the flattened 2-D layout: m[0][4]
        // is element 4 of 6 — legal in the row-major model.
        (
            "flattened_2d",
            "int main() { double m[2][3]; m[0][4] = 2.5; printf(\"x\\t%.1f\\n\", m[1][1]); return 0; }",
            false,
        ),
        (
            "reassigned_array_indexing",
            "int main() { int m[2][3]; m = 5; m[1][2] = 1; return 0; }",
            true,
        ),
        (
            "strlen_on_ints",
            "int main() { int a[3]; printf(\"%d\\n\", strlen(a)); return 0; }",
            true,
        ),
        (
            "null_string_op",
            "int main() { char *p; printf(\"%s\\n\", p); return 0; }",
            true,
        ),
        (
            "no_space_strcpy",
            "int main() { char b[4]; strcpy(b + 4, \"x\"); return 0; }",
            true,
        ),
        (
            "deref_int",
            "int main() { int x; x = 3; printf(\"%d\\n\", *x); return 0; }",
            true,
        ),
        (
            "ptr_walk",
            "int main() { char b[8]; char *p; int i; strcpy(b, \"abcdefg\"); p = b; i = 0; while (*p) { i += *p; p = p + 1; } printf(\"sum\\t%d\\n\", i); return 0; }",
            false,
        ),
        (
            "slotref_roundtrip",
            "int main() { int x; int *q; x = 5; q = &x; *q = *q + 2; printf(\"x\\t%d\\n\", x); return 0; }",
            false,
        ),
    ] {
        let r = agree(name, src, &In::None);
        assert_eq!(r.is_err(), should_fail, "case `{name}`: {r:?}");
    }
}

#[test]
fn zero_iteration_and_degenerate_loops() {
    let cases: &[(&str, &str)] = &[
        (
            "zero_trip_for",
            r#"int main() { int i, n; n = 0; for (i = 0; i < 0; i++) n++; printf("n\t%d\n", n); return 0; }"#,
        ),
        (
            "zero_trip_while",
            r#"int main() { int n; n = 5; while (n < 5) n++; printf("n\t%d\n", n); return 0; }"#,
        ),
        (
            "for_no_cond_break",
            r#"int main() { int i; i = 0; for (;;) { i++; if (i > 3) break; } printf("i\t%d\n", i); return 0; }"#,
        ),
        (
            "nested_break_continue",
            r#"int main() { int i, j, s; s = 0; for (i = 0; i < 5; i++) { for (j = 0; j < 5; j++) { if (j == 2) continue; if (j == 4) break; s += i * 10 + j; } if (i == 3) break; } printf("s\t%d\n", s); return 0; }"#,
        ),
        (
            "empty_statements",
            r#"int main() { int i; ; for (i = 0; i < 3; i++) ; ; printf("i\t%d\n", i); return 0; }"#,
        ),
        (
            "return_inside_loop",
            r#"int main() { int i; for (i = 0; i < 100; i++) { if (i == 7) { printf("i\t%d\n", i); return 0; } } printf("never\t0\n"); return 0; }"#,
        ),
    ];
    for (name, src) in cases {
        let r = agree(name, src, &In::None);
        assert!(r.is_ok(), "case `{name}` should succeed: {r:?}");
    }
    // Step limit fires with the identical message in both backends.
    let r = agree(
        "step_limit",
        "int main() { while (1) { } return 0; }",
        &In::None,
    );
    assert_eq!(
        r.unwrap_err(),
        "interpreter error: step limit exceeded (infinite loop?)"
    );
}

#[test]
fn misc_semantics_agree() {
    let cases: &[(&str, &str)] = &[
        // Compound assignment evaluates rhs first, then lhs, and an
        // indexed lhs re-evaluates its index on the store.
        (
            "compound_indexed",
            r#"int main() { int a[4]; int i; i = 1; a[1] = 10; a[i] += i = 2; printf("x\t%d\t%d\t%d\n", a[1], a[2], i); return 0; }"#,
        ),
        (
            "postinc_indexed",
            r#"int main() { int a[4]; int i; i = 0; a[0] = 5; a[i]++; printf("x\t%d\n", a[0]); return 0; }"#,
        ),
        (
            "short_circuit_skips_effects",
            r#"int main() { int n; n = 0; if (0 && (n = 9)) { } if (1 || (n = 7)) { } printf("n\t%d\n", n); return 0; }"#,
        ),
        (
            "string_literal_fresh_buffers",
            r#"int main() { int i; for (i = 0; i < 3; i++) printf("s\t%d\n", strlen("abc")); return 0; }"#,
        ),
        (
            "sizeof_and_casts",
            r#"int main() { printf("s\t%d\t%d\t%d\t%d\n", sizeof(int), sizeof(double), (int) 3.9, (int) (char) 65); return 0; }"#,
        ),
        (
            "float_promotion",
            r#"int main() { printf("x\t%.3f\t%.3f\t%d\n", 1 / 2.0, 7 % 2 + 0.5, 1.5 == 1.5); return 0; }"#,
        ),
        (
            "calloc_zeroed",
            r#"int main() { char *p; p = calloc(4, 2); printf("x\t%d\t%d\n", p[7], strlen(p)); return 0; }"#,
        ),
        (
            "function_default_return",
            r#"int noret(int x) { x = x + 1; } int main() { printf("r\t%d\n", noret(5)); return 0; }"#,
        ),
        (
            "strfind_empty_needle",
            r#"int main() { printf("f\t%d\t%d\n", strfind("abc", ""), strfind("", "a")); return 0; }"#,
        ),
        (
            "atoi_atof_lenient",
            r#"int main() { printf("x\t%d\t%d\t%.2f\n", atoi("  42  "), atoi("x42"), atof(" 2.5 ")); return 0; }"#,
        ),
    ];
    for (name, src) in cases {
        let r = agree(name, src, &In::None);
        assert!(r.is_ok(), "case `{name}` should succeed: {r:?}");
    }
    for (name, src) in [
        (
            "break_outside_loop",
            "int f() { break; return 0; } int main() { return f(); }",
        ),
        (
            "user_fn_arity",
            "int f(int a, int b) { return a + b; } int main() { return f(1); }",
        ),
        ("unknown_function", "int main() { return nothere(1); }"),
        ("unknown_variable", "int main() { return missing + 1; }"),
    ] {
        let r = agree(name, src, &In::None);
        assert!(r.is_err(), "case `{name}` should fail: {r:?}");
    }
}
