//! Golden-diagnostic tests for the heterolint fixtures.
//!
//! Every `tests/fixtures/lint/*.c` program declares the full set of
//! diagnostics it must produce via header comments:
//!
//! ```c
//! // expect: HD003 line=10 severity=warning
//! ```
//!
//! The test lints each fixture and requires the produced
//! `(code, line, severity)` set to match the declared set exactly — a
//! missing diagnostic, an extra one, a drifted span line, or a changed
//! severity all fail.

use hetero_cc::lint::{lint_program, LintLevel};
use hetero_cc::parse::parse;
use hetero_cc::sema::analyze;
use hetero_cc::{compile, compile_with, CcError};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

fn fixtures() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            if p.extension().is_some_and(|x| x == "c") {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, std::fs::read_to_string(&p).unwrap()))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(out.len() >= 8, "expected at least 8 lint fixtures");
    out
}

/// Parse `// expect: HDxxx line=N severity=S` headers.
fn expectations(src: &str) -> BTreeSet<(String, u32, String)> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("// expect:") else {
            continue;
        };
        let mut code = None;
        let mut at = None;
        let mut sev = None;
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("line=") {
                at = Some(v.parse::<u32>().expect("line number"));
            } else if let Some(v) = tok.strip_prefix("severity=") {
                sev = Some(v.to_string());
            } else {
                code = Some(tok.to_string());
            }
        }
        out.insert((
            code.expect("expect header names a code"),
            at.expect("expect header names a line"),
            sev.expect("expect header names a severity"),
        ));
    }
    out
}

#[test]
fn every_fixture_produces_exactly_its_declared_diagnostics() {
    for (name, src) in fixtures() {
        let expected = expectations(&src);
        assert!(!expected.is_empty(), "{name}: no `// expect:` headers");

        let prog = parse(&src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let analysis = analyze(&prog).unwrap_or_else(|e| panic!("{name}: sema failed: {e}"));
        let report = lint_program(&src, &prog, &analysis);

        let actual: BTreeSet<(String, u32, String)> = report
            .diags
            .iter()
            .map(|d| (d.code.to_string(), d.span.line, d.severity.to_string()))
            .collect();
        assert_eq!(
            actual,
            expected,
            "{name}: diagnostic set mismatch\nrendered:\n{}",
            report.render(&src)
        );

        // Rendering must produce a snippet with an underline for each.
        let rendered = report.render(&src);
        for (code, _, _) in &expected {
            assert!(
                rendered.contains(code.as_str()),
                "{name}: {code} not rendered"
            );
        }
        assert!(rendered.contains('^'), "{name}: no underline in rendering");
    }
}

#[test]
fn lint_level_gates_compilation_per_fixture() {
    for (name, src) in fixtures() {
        let expected = expectations(&src);
        let has_error = expected.iter().any(|(_, _, s)| s == "error");
        let has_warning = expected.iter().any(|(_, _, s)| s == "warning");

        // Default level (Warn): errors abort the pipeline with a lint
        // error carrying one summary per finding.
        match compile(&src) {
            Err(CcError::Lint { reports }) => {
                assert!(has_error, "{name}: compile rejected but no error expected");
                assert_eq!(
                    reports.len(),
                    expected.iter().filter(|(_, _, s)| s == "error").count(),
                    "{name}: summary count"
                );
            }
            Ok(_) => assert!(!has_error, "{name}: compile accepted despite errors"),
            Err(e) => panic!("{name}: unexpected compile failure: {e}"),
        }

        // Deny also rejects warnings; perf-notes never block.
        match compile_with(&src, LintLevel::Deny) {
            Err(CcError::Lint { .. }) => {
                assert!(
                    has_error || has_warning,
                    "{name}: Deny rejected perf-note-only fixture"
                )
            }
            Ok(_) => assert!(!has_error && !has_warning, "{name}: Deny accepted findings"),
            Err(e) => panic!("{name}: unexpected compile failure: {e}"),
        }

        // Off always compiles and carries no lint report.
        let off = compile_with(&src, LintLevel::Off)
            .unwrap_or_else(|e| panic!("{name}: LintLevel::Off rejected: {e}"));
        assert!(off.lint.diags.is_empty(), "{name}: Off still linted");
    }
}

#[test]
fn fixture_json_reports_are_well_formed() {
    for (name, src) in fixtures() {
        let prog = parse(&src).unwrap();
        let analysis = analyze(&prog).unwrap();
        let report = lint_program(&src, &prog, &analysis);
        let json = report.to_json(&name);
        assert!(json.starts_with('{') && json.ends_with('}'), "{name}");
        assert!(json.contains("\"diagnostics\":["), "{name}");
        for d in &report.diags {
            assert!(json.contains(&format!("\"code\":\"{}\"", d.code)), "{name}");
        }
    }
}
