//! Abstract syntax tree for the HeteroDoop C subset.
//!
//! The subset covers what the paper's MapReduce programs use (Listings 1
//! and 2 and the eight evaluation benchmarks): scalar and array
//! declarations, pointers, the usual expression operators, `while`/`for`/
//! `if`, function definitions and calls, and `#pragma mapreduce`
//! annotations attached to statements.

use crate::error::Span;
use crate::pragma::Directive;

/// C types in the subset. `long`, `unsigned`, and `size_t` are folded
/// into `Int`; `float` into `Double` for interpretation (codegen keeps
/// the original spelling via [`CType::c_name`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CType {
    /// `void`
    Void,
    /// `char`
    Char,
    /// Integer family.
    Int,
    /// `float`
    Float,
    /// `double`
    Double,
    /// Pointer to inner type.
    Ptr(Box<CType>),
    /// Array with optional compile-time length.
    Array(Box<CType>, Option<usize>),
}

impl CType {
    /// Whether this is an arithmetic scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            CType::Char | CType::Int | CType::Float | CType::Double
        )
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, CType::Array(..))
    }

    /// Element type for arrays/pointers.
    pub fn element(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) | CType::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Size of one element in bytes (as the paper's `keylength` would
    /// count it).
    pub fn scalar_size(&self) -> usize {
        match self {
            CType::Void => 0,
            CType::Char => 1,
            CType::Int => 4,
            CType::Float => 4,
            CType::Double => 8,
            CType::Ptr(_) => 8,
            CType::Array(t, n) => t.scalar_size() * n.unwrap_or(1),
        }
    }

    /// C spelling for code generation.
    pub fn c_name(&self) -> String {
        match self {
            CType::Void => "void".to_string(),
            CType::Char => "char".to_string(),
            CType::Int => "int".to_string(),
            CType::Float => "float".to_string(),
            CType::Double => "double".to_string(),
            CType::Ptr(t) => format!("{} *", t.c_name()),
            CType::Array(t, Some(n)) => format!("{}[{}]", t.c_name(), n),
            CType::Array(t, None) => format!("{}[]", t.c_name()),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `&x`
    AddrOf,
    /// `*x`
    Deref,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Compound-assignment operators (`=` is `AssignOp::None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    None,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Char literal.
    CharLit(u8),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Postfix `x++`.
    PostInc(Box<Expr>),
    /// Postfix `x--`.
    PostDec(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment, possibly compound. Evaluates to the stored value
    /// (C semantics — the paper's listings rely on `(read = getline(..))`).
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Array indexing `a[i]` (possibly multi-dim via nesting).
    Index(Box<Expr>, Box<Expr>),
    /// Type cast.
    Cast(CType, Box<Expr>),
    /// `sizeof(type)`.
    SizeOf(CType),
}

/// One declarator within a declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Complete type of the declared name.
    pub ty: CType,
    /// Declared name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Variable declaration(s).
    Decl(Vec<Declarator>),
    /// Expression statement.
    Expr(Expr),
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional init statement (decl or expr).
        init: Option<Box<Stmt>>,
        /// Optional condition (true when absent).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `return [expr];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// A statement annotated with a `#pragma mapreduce` directive; the
    /// directive index refers into [`Program::directives`].
    Annotated(usize, Box<Stmt>),
    /// Empty statement `;`.
    Empty,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement kind.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Return type.
    pub ret: CType,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(CType, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Functions, in source order. `main` is the MapReduce entry point.
    pub funcs: Vec<FuncDef>,
    /// All `#pragma mapreduce` directives found, referenced by
    /// [`StmtKind::Annotated`].
    pub directives: Vec<Directive>,
}

impl Program {
    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// Walk all statements of a function (pre-order), calling `f` on each.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        walk_stmt(s, f);
    }
}

fn walk_stmt<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::While { body, .. } => walk_stmt(body, f),
        StmtKind::For { init, body, .. } => {
            if let Some(i) = init {
                walk_stmt(i, f);
            }
            walk_stmt(body, f);
        }
        StmtKind::If { then, els, .. } => {
            walk_stmt(then, f);
            if let Some(e) = els {
                walk_stmt(e, f);
            }
        }
        StmtKind::Block(v) => walk_stmts(v, f),
        StmtKind::Annotated(_, inner) => walk_stmt(inner, f),
        _ => {}
    }
}

/// Walk all expressions within a statement subtree (pre-order).
pub fn walk_exprs<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    walk_stmt(s, &mut |st| {
        let mut visit = |e: &'a Expr| walk_expr(e, f);
        match &st.kind {
            StmtKind::Decl(ds) => {
                for d in ds {
                    if let Some(i) = &d.init {
                        visit(i);
                    }
                }
            }
            StmtKind::Expr(e) => visit(e),
            StmtKind::While { cond, .. } => visit(cond),
            StmtKind::For { cond, step, .. } => {
                if let Some(c) = cond {
                    visit(c);
                }
                if let Some(st2) = step {
                    visit(st2);
                }
            }
            StmtKind::If { cond, .. } => visit(cond),
            StmtKind::Return(Some(e)) => visit(e),
            _ => {}
        }
    });
}

fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Unary(_, x) | Expr::PostInc(x) | Expr::PostDec(x) | Expr::Cast(_, x) => {
            walk_expr(x, f)
        }
        Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Cond(c, t, x) => {
            walk_expr(c, f);
            walk_expr(t, f);
            walk_expr(x, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_properties() {
        assert!(CType::Int.is_scalar());
        assert!(!CType::Ptr(Box::new(CType::Char)).is_scalar());
        let arr = CType::Array(Box::new(CType::Char), Some(30));
        assert!(arr.is_array());
        assert_eq!(arr.scalar_size(), 30);
        assert_eq!(arr.element(), Some(&CType::Char));
        assert_eq!(CType::Double.scalar_size(), 8);
    }

    #[test]
    fn c_name_round_trips_shapes() {
        assert_eq!(CType::Ptr(Box::new(CType::Char)).c_name(), "char *");
        assert_eq!(
            CType::Array(Box::new(CType::Int), Some(4)).c_name(),
            "int[4]"
        );
    }
}
