//! Clause validator (Table 1 consistency): HD004–HD007, HD013–HD015.

use super::dataflow::RegionUnit;
use super::{push, Diag};
use crate::ast::CType;
use crate::pragma::DirectiveKind;
use std::collections::BTreeSet;

/// Run the clause-consistency family on one region.
pub fn check(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    emits_match_clauses(unit, diags);
    lengths_fit(unit, diags);
    storage_contradictions(unit, diags);
    if unit.kind == DirectiveKind::Combiner {
        reduction_op(unit, diags);
    }
    warp_alignment(unit, diags);
}

/// Conversion classes a printf directive can demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conv {
    Str,
    Int,
    Float,
    Char,
}

/// Parse the conversions out of a printf format string, tolerating
/// flags/width/precision/length modifiers (`%-8.3lf` etc.). `%%` is a
/// literal.
fn conversions(fmt: &str) -> Vec<Conv> {
    let b = fmt.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'%' {
            i += 1;
            continue;
        }
        i += 1;
        // Flags, width, precision, length modifiers.
        while i < b.len()
            && matches!(
                b[i],
                b'-' | b'+' | b' ' | b'#' | b'0'..=b'9' | b'.' | b'l' | b'h' | b'z'
            )
        {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        match b[i] {
            b'%' => {}
            b's' => out.push(Conv::Str),
            b'd' | b'i' | b'u' | b'x' | b'X' | b'o' => out.push(Conv::Int),
            b'f' | b'F' | b'e' | b'E' | b'g' | b'G' => out.push(Conv::Float),
            b'c' => out.push(Conv::Char),
            _ => out.push(Conv::Int), // unknown: most permissive integer
        }
        i += 1;
    }
    out
}

fn conv_accepts(c: Conv, ty: Option<&CType>) -> bool {
    let Some(ty) = ty else {
        // Unknown type (e.g. region-local): accept.
        return true;
    };
    match c {
        Conv::Str => matches!(
            ty,
            CType::Array(el, _) | CType::Ptr(el) if matches!(el.as_ref(), CType::Char)
        ),
        Conv::Int => matches!(ty, CType::Int | CType::Char),
        Conv::Float => matches!(ty, CType::Float | CType::Double),
        Conv::Char => matches!(ty, CType::Char | CType::Int),
    }
}

fn conv_name(c: Conv) -> &'static str {
    match c {
        Conv::Str => "%s (string)",
        Conv::Int => "%d (integer)",
        Conv::Float => "%f (floating-point)",
        Conv::Char => "%c (char)",
    }
}

/// HD004 + HD014: every region must emit, and each emit site must agree
/// with the `key`/`value` clauses — argument count matches the format's
/// conversions, the first argument is the key clause variable with a
/// compatible conversion, and the value clause variable appears with a
/// compatible conversion.
fn emits_match_clauses(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    if unit.emits.is_empty() {
        push(
            diags,
            "HD014",
            unit.dir.span,
            None,
            format!(
                "{} region never emits: no printf(key, value) call found; the kernel \
                 would produce no output",
                kind_name(unit.kind)
            ),
        );
        return;
    }
    for e in &unit.emits {
        let convs = conversions(&e.fmt);
        if convs.len() != e.args.len() {
            push(
                diags,
                "HD004",
                e.span,
                None,
                format!(
                    "emit format {:?} has {} conversion(s) but {} argument(s)",
                    e.fmt,
                    convs.len(),
                    e.args.len()
                ),
            );
            continue;
        }
        if convs.is_empty() {
            push(
                diags,
                "HD004",
                e.span,
                None,
                format!(
                    "emit format {:?} carries no key/value conversions; expected \
                     \"key\\tvalue\\n\" shape",
                    e.fmt
                ),
            );
            continue;
        }
        // Key: first conversion / first argument.
        match &e.args[0] {
            Some(a) if *a == unit.dir.key => {
                if !conv_accepts(convs[0], unit.ty(a)) {
                    push(
                        diags,
                        "HD004",
                        e.span,
                        Some(a.clone()),
                        format!(
                            "key `{a}` has type `{}` but is emitted with {}",
                            ty_name(unit.ty(a)),
                            conv_name(convs[0])
                        ),
                    );
                }
            }
            Some(a) => push(
                diags,
                "HD004",
                e.span,
                Some(a.clone()),
                format!(
                    "first emitted field is `{a}` but the directive declares key({})",
                    unit.dir.key
                ),
            ),
            None => push(
                diags,
                "HD004",
                e.span,
                None,
                format!(
                    "first emitted field is not a variable; the directive declares key({})",
                    unit.dir.key
                ),
            ),
        }
        // Value: the value clause variable must appear among the
        // remaining args with a compatible conversion. Extra args are a
        // composite textual value (KMeans emits "%d %d" for sum+count),
        // which vallength accounts for.
        let mut value_seen = false;
        for (i, a) in e.args.iter().enumerate().skip(1) {
            if a.as_deref() == Some(unit.dir.value.as_str()) {
                value_seen = true;
                if !conv_accepts(convs[i], unit.ty(&unit.dir.value)) {
                    push(
                        diags,
                        "HD004",
                        e.span,
                        Some(unit.dir.value.clone()),
                        format!(
                            "value `{}` has type `{}` but is emitted with {}",
                            unit.dir.value,
                            ty_name(unit.ty(&unit.dir.value)),
                            conv_name(convs[i])
                        ),
                    );
                }
            }
        }
        if !value_seen {
            push(
                diags,
                "HD004",
                e.span,
                None,
                format!(
                    "emit does not reference the value clause variable `{}`",
                    unit.dir.value
                ),
            );
        }
    }
}

/// HD005: a `keylength`/`vallength` clause smaller than the declared
/// array it describes silently truncates emitted bytes. Scalar textual
/// lengths (the paper's `vallength(1)` for an int's digit) are legal.
fn lengths_fit(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let mut check_len = |var: &str, clause: Option<usize>, what: &str| {
        let (Some(n), Some(CType::Array(el, Some(len)))) = (clause, unit.ty(var)) else {
            return;
        };
        let bytes = el.scalar_size() * len;
        if n < bytes {
            push(
                diags,
                "HD005",
                unit.dir.span,
                Some(format!("{what}length")),
                format!(
                    "{what}length({n}) truncates `{var}`: the declared array is {bytes} \
                     bytes; emitted {what}s would lose data"
                ),
            );
        }
    };
    check_len(&unit.dir.key, unit.dir.keylength, "key");
    check_len(&unit.dir.value, unit.dir.vallength, "val");
}

/// HD006 + HD015: a variable cannot be both privatized and shared;
/// listing it in both `sharedRO` and `texture` (or twice in one list) is
/// redundant.
fn storage_contradictions(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let fp: BTreeSet<&String> = unit.dir.firstprivate.iter().collect();
    let ro: BTreeSet<&String> = unit.dir.shared_ro.iter().collect();
    let tex: BTreeSet<&String> = unit.dir.texture.iter().collect();
    for v in fp.iter() {
        if ro.contains(*v) || tex.contains(*v) {
            let other = if ro.contains(*v) {
                "sharedRO"
            } else {
                "texture"
            };
            push(
                diags,
                "HD006",
                unit.dir.span,
                Some((*v).clone()),
                format!(
                    "`{v}` is declared both firstprivate (per-thread copy) and {other} \
                     (single shared copy) — the placements are mutually exclusive"
                ),
            );
        }
    }
    for v in ro.intersection(&tex) {
        push(
            diags,
            "HD015",
            unit.dir.span,
            Some((*v).clone()),
            format!(
                "`{v}` appears in both sharedRO and texture; texture wins and the \
                 sharedRO listing is redundant"
            ),
        );
    }
    for (list, name) in [
        (&unit.dir.firstprivate, "firstprivate"),
        (&unit.dir.shared_ro, "sharedRO"),
        (&unit.dir.texture, "texture"),
    ] {
        let mut seen = BTreeSet::new();
        for v in list {
            if !seen.insert(v) {
                push(
                    diags,
                    "HD015",
                    unit.dir.span,
                    Some(v.clone()),
                    format!("`{v}` is listed twice in the {name} clause"),
                );
            }
        }
    }
}

/// HD007: the combiner folds values with an operator that must be
/// commutative and associative (the paper's combine step may see values
/// in any order and grouping). `-=`, `/=`, `%=` are neither.
fn reduction_op(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    use crate::ast::AssignOp;
    for (op, span) in &unit.compound_ops {
        if unit.dir.value != op.1 {
            continue;
        }
        if matches!(op.0, AssignOp::Sub | AssignOp::Div | AssignOp::Rem) {
            let sym = match op.0 {
                AssignOp::Sub => "-=",
                AssignOp::Div => "/=",
                AssignOp::Rem => "%=",
                _ => unreachable!(),
            };
            push(
                diags,
                "HD007",
                *span,
                Some(op.1.clone()),
                format!(
                    "combiner folds `{}` with `{sym}`, which is not \
                     commutative/associative; combining in a different order or \
                     grouping changes the result",
                    op.1
                ),
            );
        }
    }
}

/// HD013: a `threads` clause that is not a multiple of the warp size
/// wastes lanes in every warp.
fn warp_alignment(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    if let Some(t) = unit.dir.threads {
        if t % 32 != 0 {
            push(
                diags,
                "HD013",
                unit.dir.span,
                Some("threads".to_string()),
                format!(
                    "threads({t}) is not a multiple of the warp size (32); the last \
                     {} lanes of every warp idle",
                    32 - (t % 32)
                ),
            );
        }
    }
}

fn kind_name(k: DirectiveKind) -> &'static str {
    match k {
        DirectiveKind::Mapper => "mapper",
        DirectiveKind::Combiner => "combiner",
    }
}

fn ty_name(t: Option<&CType>) -> String {
    t.map(|t| t.c_name()).unwrap_or_else(|| "?".to_string())
}

#[cfg(test)]
mod tests {
    use super::super::lint_program;
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    fn lint(src: &str) -> super::super::LintReport {
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        lint_program(src, &prog, &a)
    }

    #[test]
    fn format_parser_handles_modifiers() {
        assert_eq!(conversions("%s\t%d\n"), vec![Conv::Str, Conv::Int]);
        assert_eq!(conversions("%s\t%.6f\n"), vec![Conv::Str, Conv::Float]);
        assert_eq!(conversions("%s %lf"), vec![Conv::Str, Conv::Float]);
        assert_eq!(conversions("100%% %d"), vec![Conv::Int]);
    }

    #[test]
    fn hd004_type_mismatch() {
        let src = r#"
int main() {
  char word[30]; double v;
  #pragma mapreduce mapper key(word) value(v) keylength(30) vallength(8)
  while (getline(&word, 0, stdin) != -1) {
    v = 1.5;
    printf("%s\t%d\n", word, v);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD004").unwrap();
        assert!(d.msg.contains("value `v`"), "{}", d.msg);
    }

    #[test]
    fn hd005_truncating_keylength() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) keylength(8) vallength(4)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD005").unwrap();
        assert!(d.msg.contains("truncates"), "{}", d.msg);
    }

    #[test]
    fn hd006_firstprivate_and_shared() {
        let src = r#"
int main() {
  char word[30]; int one; double m[8];
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) \
    firstprivate(m) sharedRO(m)
  while (getline(&word, 0, stdin) != -1) { one = m[0] > 0.0; printf("%s\t%d\n", word, one); }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD006"));
    }

    #[test]
    fn hd007_subtracting_combiner() {
        let src = r#"
int main() {
  char key[30], prevKey[30]; prevKey[0] = '\0';
  int diff, val, read; diff = 0;
  #pragma mapreduce combiner key(prevKey) value(diff) keyin(key) valuein(val) \
    keylength(30) vallength(4) firstprivate(prevKey, diff)
  {
    while ((read = scanf("%s %d", key, &val)) == 2) {
      if (strcmp(key, prevKey) == 0) { diff -= val; }
      else { strcpy(prevKey, key); diff = val; }
    }
    if (prevKey[0] != '\0') printf("%s\t%d\n", prevKey, diff);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD007").unwrap();
        assert!(d.msg.contains("-="), "{}", d.msg);
    }

    #[test]
    fn hd013_unaligned_threads() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) threads(100)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD013"));
    }

    #[test]
    fn hd014_no_emit() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) { one = 1; }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD014"));
    }

    #[test]
    fn hd015_shared_and_texture() {
        let src = r#"
int main() {
  char word[30]; int one; double m[8];
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) \
    sharedRO(m) texture(m)
  while (getline(&word, 0, stdin) != -1) { one = m[0] > 0.0; printf("%s\t%d\n", word, one); }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD015"));
    }
}
