//! Flow-sensitive abstract interpretation over the typed AST.
//!
//! This is the value analysis behind diagnostics HD016–HD021 and behind
//! the native backend's proof-guided check elision. It abstractly
//! executes `main` in the exact statement/expression order the
//! interpreter uses (the same execution-order convention
//! `dataflow.rs` events follow: `for`-init before cond, rhs before a
//! compound assignment's lhs, subscript index before base, lazy
//! `printf` arguments), tracking four domains per variable:
//!
//! * **interval** — an [`Interval`] for integer-valued quantities,
//! * **initialization** — an [`InitState`] for declared-but-unassigned
//!   scalars (the interpreter zero-defines them, hence HD018 is a
//!   warning rather than an error),
//! * **nullness** — whether a pointer may still be the `V::Null`
//!   default ([`Nullness`] folded into [`PtrFact`]),
//! * **array extent** — the element count of the buffer a pointer
//!   refers to, plus its element offset as an interval.
//!
//! ## Fixpoint discipline
//!
//! Loops run a two-phase analysis. Phase one iterates the body
//! abstractly from the loop-head state, joining the back edge into the
//! head; after [`WIDEN_DELAY`] joins every moved interval bound is
//! widened straight to infinity, so the chain stabilizes in a handful
//! of iterations (bounded by [`MAX_FIXPOINT_ITERS`]; if that bound is
//! ever hit the head is havocked to top, which converges immediately
//! and is reported via [`ValueAnalysis::max_fixpoint_iters`] so tests
//! can assert the bound). Phase one is silent: no findings, no facts —
//! intermediate iterates (e.g. `i = [0,0]` on the first pass) would
//! produce spurious "provably dead" claims. Phase two replays the body
//! once from the stable head with reporting enabled. The whole
//! procedure is deterministic: environments are `BTreeMap`s, the
//! iteration order is the program order, and no hashing order leaks
//! into results.
//!
//! ## Soundness contract
//!
//! The abstract state over-approximates every *non-faulting* concrete
//! execution: when a runtime error is provable (out-of-bounds write,
//! division by a definite zero) the environment drops to unreachable,
//! exactly as the concrete program halts. A [`SafetyFacts`] entry
//! `proven-safe` for a site therefore means: every execution that
//! reaches the site with operand *values* satisfies the guarded
//! predicate — which is precisely the condition under which the native
//! backend may skip the guard without changing observable behavior.
//! Guards charge nothing to `InterpStats`, so elision is
//! stats-neutral by construction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::{AssignOp, BinOp, CType, Declarator, Expr, Program, Stmt, StmtKind, UnOp};
use crate::error::Span;
use crate::interp::{builtin_min_args, parse_printf, parse_scanf, PSeg};

use super::domains::{InitState, Interval, Nullness};

/// Joins before widening kicks in at a loop head.
const WIDEN_DELAY: usize = 3;

/// Hard bound on loop-head iterations; exceeding it havocs the head to
/// top (which converges on the next check). Far above what the widened
/// domains need — asserted by the fixpoint corner tests.
pub(crate) const MAX_FIXPOINT_ITERS: usize = 64;

// ====================================================================
// Safety facts — the analyzer→backend contract.
// ====================================================================

/// Per-site safety verdicts exported from the value analysis.
///
/// Sites are keyed by AST node *identity* (the address of the
/// `Expr::Index`, `Expr::Binary(Div|Rem)`, or `Expr::Call` node).
/// Node addresses are stable across moves of the owning [`Program`]
/// (the boxes live on the heap) but not across clones; [`SafetyFacts::matches`]
/// checks a fingerprint of the program so a stale table is detected
/// and recomputed rather than silently misapplied.
///
/// `true` means proven safe: every execution reaching the site with
/// operand values satisfies the guard the native backend would
/// otherwise evaluate. `false` (or absence) means unknown — the guard
/// stays. Call-site facts are recorded for completeness of the table
/// (a proven call's own argument dispatch cannot fault) but are not
/// yet consumed by the backend.
#[derive(Clone, Debug, Default)]
pub struct SafetyFacts {
    token: usize,
    subscripts: HashMap<usize, bool>,
    divisions: HashMap<usize, bool>,
    calls: HashMap<usize, bool>,
}

impl SafetyFacts {
    /// Run the value analysis on `prog` and keep only the facts.
    pub fn for_program(prog: &Program) -> SafetyFacts {
        analyze_main(prog).facts
    }

    /// Whether this table was computed for exactly this `Program`
    /// value (moves preserve the fingerprint, clones do not).
    pub fn matches(&self, prog: &Program) -> bool {
        self.token != 0 && self.token == prog.funcs.as_ptr() as usize
    }

    /// Whether the subscript site `e` is proven in-bounds.
    pub fn subscript_safe(&self, e: &Expr) -> bool {
        self.subscripts.get(&key(e)).copied().unwrap_or(false)
    }

    /// Whether the division/remainder site `e` is proven to never see
    /// an integer zero denominator.
    pub fn division_safe(&self, e: &Expr) -> bool {
        self.divisions.get(&key(e)).copied().unwrap_or(false)
    }

    /// Whether the call site `e`'s own argument dispatch is proven
    /// fault-free.
    pub fn call_safe(&self, e: &Expr) -> bool {
        self.calls.get(&key(e)).copied().unwrap_or(false)
    }

    /// `(subscripts, divisions, calls)` — sites the analysis visited.
    pub fn site_counts(&self) -> (usize, usize, usize) {
        (
            self.subscripts.len(),
            self.divisions.len(),
            self.calls.len(),
        )
    }

    /// `(subscripts, divisions, calls)` — sites proven safe.
    pub fn proven_counts(&self) -> (usize, usize, usize) {
        let n = |m: &HashMap<usize, bool>| m.values().filter(|v| **v).count();
        (n(&self.subscripts), n(&self.divisions), n(&self.calls))
    }
}

/// Test-only forgery: lets backend tests hand the compiler a *wrong*
/// proof and assert the checked-elision oracle catches it.
#[cfg(test)]
impl SafetyFacts {
    /// An empty table whose token claims it was computed for `prog`.
    pub(crate) fn forged_for(prog: &Program) -> SafetyFacts {
        SafetyFacts {
            token: prog.funcs.as_ptr() as usize,
            ..SafetyFacts::default()
        }
    }

    /// Claim the subscript site `e` is proven in-bounds.
    pub(crate) fn claim_subscript(&mut self, e: &Expr) {
        self.subscripts.insert(key(e), true);
    }

    /// Claim the division site `e` is proven nonzero.
    pub(crate) fn claim_division(&mut self, e: &Expr) {
        self.divisions.insert(key(e), true);
    }
}

fn key(e: &Expr) -> usize {
    e as *const Expr as usize
}

/// One diagnostic produced by the analysis (wired into the lint report
/// by `lint_program`).
#[derive(Clone, Debug)]
pub(crate) struct Finding {
    /// HD016–HD021.
    pub code: &'static str,
    /// Statement span the finding anchors to.
    pub span: Span,
    /// Variable name to underline, when one is implicated.
    pub focus: Option<String>,
    /// Human-readable message.
    pub msg: String,
}

/// Everything the analysis produces: findings for the lint report,
/// facts for the backend, and the worst loop-head iteration count for
/// the fixpoint-bound tests.
pub(crate) struct ValueAnalysis {
    /// Per-site safety verdicts.
    pub facts: SafetyFacts,
    /// HD016–HD021 findings in deterministic program order.
    pub findings: Vec<Finding>,
    /// Largest loop-head iteration count any fixpoint needed.
    #[cfg_attr(not(test), allow(dead_code))]
    pub max_fixpoint_iters: usize,
}

// ====================================================================
// Abstract values.
// ====================================================================

/// Element kind of the buffer behind a pointer (mirrors `Buffer`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ElemKind {
    Byte,
    Int,
    Double,
    Unknown,
}

impl ElemKind {
    fn of(t: &CType) -> ElemKind {
        match crate::interp::leaf_type(t) {
            CType::Char => ElemKind::Byte,
            CType::Float | CType::Double => ElemKind::Double,
            _ => ElemKind::Int,
        }
    }

    /// Abstract value of one element read from such a buffer.
    fn read_value(self) -> AVal {
        match self {
            ElemKind::Byte => AVal::Int(Interval::range(0, 255)),
            ElemKind::Int => AVal::Int(Interval::FULL),
            ElemKind::Double => AVal::Float,
            ElemKind::Unknown => AVal::Top,
        }
    }
}

/// What is known about a pointer value.
#[derive(Clone, Debug, PartialEq)]
struct PtrFact {
    /// May the value still be the `V::Null` sentinel?
    null: Nullness,
    /// Element count of the buffer, when uniquely known.
    extent: Option<usize>,
    /// Element offset into the buffer.
    off: Interval,
    /// Buffer element kind.
    elem: ElemKind,
}

impl PtrFact {
    fn join(&self, o: &PtrFact) -> PtrFact {
        PtrFact {
            null: self.null.join(&o.null),
            extent: if self.extent == o.extent {
                self.extent
            } else {
                None
            },
            off: self.off.join(&o.off),
            elem: if self.elem == o.elem {
                self.elem
            } else {
                ElemKind::Unknown
            },
        }
    }
}

/// Abstract counterpart of the interpreter's `V`, over-approximating
/// the value an expression produces *when it evaluates without error*.
#[derive(Clone, Debug, PartialEq)]
enum AVal {
    /// Definitely `V::I`, within the interval.
    Int(Interval),
    /// Definitely `V::F` (float intervals are not tracked).
    Float,
    /// Definitely a buffer pointer (or possibly-null per the fact).
    Ptr(PtrFact),
    /// Definitely the `V::Null` sentinel.
    Null,
    /// Definitely `V::SlotRef` to the named scalar.
    SlotRef(String),
    /// Anything.
    Top,
}

impl AVal {
    fn join(&self, o: &AVal) -> AVal {
        use AVal::*;
        match (self, o) {
            (Int(a), Int(b)) => Int(a.join(b)),
            (Float, Float) => Float,
            (Ptr(a), Ptr(b)) => Ptr(a.join(b)),
            (Null, Null) => Null,
            (Null, Ptr(f)) | (Ptr(f), Null) => Ptr(PtrFact {
                null: Nullness::MaybeNull,
                ..f.clone()
            }),
            (SlotRef(a), SlotRef(b)) if a == b => SlotRef(a.clone()),
            _ => Top,
        }
    }

    /// The interval this value contributes when used where `as_int`
    /// succeeds. Floats truncate to an unknown integer; pointers fail
    /// `as_int` entirely, so any interval is vacuously sound for the
    /// (nonexistent) success values.
    fn int_itv(&self) -> Interval {
        match self {
            AVal::Int(i) => *i,
            _ => Interval::FULL,
        }
    }

    /// Definite truthiness under the interpreter's `truthy`.
    fn definitely_truthy(&self) -> Option<bool> {
        match self {
            AVal::Int(i) => i.definitely_truthy(),
            AVal::Ptr(f) if f.null == Nullness::NonNull => Some(true),
            AVal::SlotRef(_) => Some(true),
            AVal::Null => Some(false),
            _ => None,
        }
    }

    fn truth_interval(&self) -> Interval {
        match self.definitely_truthy() {
            Some(true) => Interval::constant(1),
            Some(false) => Interval::constant(0),
            None => Interval::range(0, 1),
        }
    }
}

/// Per-variable abstract state.
#[derive(Clone, Debug, PartialEq)]
struct VarState {
    val: AVal,
    init: InitState,
    /// Declared as an array (decays under `&`, never SlotRef-targeted).
    is_array: bool,
    /// Declared 2-D row length, driving the strided fast path.
    stride: Option<usize>,
}

impl VarState {
    fn join(&self, o: &VarState) -> VarState {
        VarState {
            val: self.val.join(&o.val),
            init: self.init.join(&o.init),
            is_array: self.is_array && o.is_array,
            stride: if self.stride == o.stride {
                self.stride
            } else {
                None
            },
        }
    }

    fn havoc(&self) -> VarState {
        VarState {
            val: AVal::Top,
            init: InitState::MaybeInit,
            is_array: self.is_array,
            stride: self.stride,
        }
    }
}

type Env = BTreeMap<String, VarState>;

/// Join two reachability-tagged environments. Keys are intersected:
/// a variable missing on one side simply becomes unknown (lookups
/// treat absence as top).
fn join_opt(a: Option<Env>, b: Option<Env>) -> Option<Env> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(ea), Some(eb)) => {
            let mut out = Env::new();
            for (k, va) in &ea {
                if let Some(vb) = eb.get(k) {
                    out.insert(k.clone(), va.join(vb));
                }
            }
            Some(out)
        }
    }
}

/// Widen `head` toward `back` (which must already include `head` via
/// the join): interval bounds that moved jump to infinity, every other
/// component takes the joined value (their lattices are finite).
fn widen_env(head: &Env, back: &Env) -> Env {
    let mut out = Env::new();
    for (k, vb) in back {
        let widened = match head.get(k) {
            Some(vh) => {
                let val = match (&vh.val, &vb.val) {
                    (AVal::Int(a), AVal::Int(b)) => AVal::Int(a.widen(b)),
                    (AVal::Ptr(pa), AVal::Ptr(pb)) => AVal::Ptr(PtrFact {
                        off: pa.off.widen(&pb.off),
                        ..pb.clone()
                    }),
                    _ => vb.val.clone(),
                };
                VarState { val, ..vb.clone() }
            }
            None => vb.clone(),
        };
        out.insert(k.clone(), widened);
    }
    out
}

fn havoc_all(mut env: Env) -> Env {
    for vs in env.values_mut() {
        *vs = vs.havoc();
    }
    env
}

// ====================================================================
// The analyzer.
// ====================================================================

struct LoopCx {
    /// `frames.len()` at loop entry; break/continue snapshots unwind
    /// scopes deeper than this so their keys line up with the head's.
    frame_depth: usize,
    breaks: Vec<Env>,
    continues: Vec<Env>,
}

struct Analyzer<'p> {
    prog: &'p Program,
    /// `None` = this program point is unreachable (bottom).
    env: Option<Env>,
    /// Scope save-stack: each frame records shadowed/created bindings
    /// to restore at block exit.
    frames: Vec<Vec<(String, Option<VarState>)>>,
    loops: Vec<LoopCx>,
    /// Reporting pass? Gates findings *and* fact recording (fixpoint
    /// iterations must stay silent).
    report: bool,
    cur_span: Span,
    findings: Vec<Finding>,
    finding_keys: BTreeSet<(String, u32, u32, u32, String)>,
    facts: SafetyFacts,
    max_fixpoint_iters: usize,
}

/// Run the value analysis over `prog`'s `main` (helpers are not
/// analyzed: their sites simply stay unknown, which is sound).
pub(crate) fn analyze_main(prog: &Program) -> ValueAnalysis {
    let mut a = Analyzer {
        prog,
        env: None,
        frames: vec![Vec::new()],
        loops: Vec::new(),
        report: true,
        cur_span: Span::default(),
        findings: Vec::new(),
        finding_keys: BTreeSet::new(),
        facts: SafetyFacts {
            token: prog.funcs.as_ptr() as usize,
            ..SafetyFacts::default()
        },
        max_fixpoint_iters: 0,
    };
    if let Some(main) = prog.func("main") {
        let mut env = Env::new();
        for (ty, name) in &main.params {
            env.insert(
                name.clone(),
                VarState {
                    val: match ty {
                        CType::Float | CType::Double => AVal::Float,
                        CType::Ptr(_) => AVal::Top,
                        _ => AVal::Int(Interval::FULL),
                    },
                    init: InitState::Init,
                    is_array: ty.is_array(),
                    stride: None,
                },
            );
        }
        a.env = Some(env);
        for s in &main.body {
            a.exec_stmt(s);
        }
    }
    ValueAnalysis {
        facts: a.facts,
        findings: a.findings,
        max_fixpoint_iters: a.max_fixpoint_iters,
    }
}

impl<'p> Analyzer<'p> {
    // ---- bookkeeping ----

    fn get(&self, name: &str) -> Option<&VarState> {
        self.env.as_ref().and_then(|e| e.get(name))
    }

    /// Assign `val` to `name` (marks it initialized). An unknown name
    /// is a definite runtime error → unreachable.
    fn write_var(&mut self, name: &str, val: AVal) {
        let known = match self.env.as_mut() {
            Some(env) => match env.get_mut(name) {
                Some(vs) => {
                    vs.val = val;
                    vs.init = InitState::Init;
                    true
                }
                None => false,
            },
            None => return,
        };
        if !known {
            self.env = None;
        }
    }

    /// A store may or may not have hit `name` (scanf/getline EOF paths
    /// handle this via env forking; this is for call-by-reference
    /// havoc where the callee may write).
    fn havoc_var(&mut self, name: &str) {
        if let Some(env) = self.env.as_mut() {
            if let Some(vs) = env.get_mut(name) {
                vs.val = AVal::Top;
                vs.init = vs.init.join(&InitState::Init);
            }
        }
    }

    /// A store went through an unknown slot reference: any scalar may
    /// have been written.
    fn havoc_all_scalars(&mut self) {
        if let Some(env) = self.env.as_mut() {
            for vs in env.values_mut() {
                if !vs.is_array {
                    vs.val = AVal::Top;
                    vs.init = vs.init.join(&InitState::Init);
                }
            }
        }
    }

    fn bind_decl(&mut self, name: &str, vs: VarState) {
        let Some(env) = self.env.as_mut() else { return };
        // Shadowing hazard: a SlotRef taken on the outer binding would
        // resolve by name to the inner one while shadowed, so the saved
        // outer state could go stale. Havoc the saved copy: the restore
        // is then conservative no matter what happened in between.
        let old = env.insert(name.to_string(), vs).map(|v| v.havoc());
        self.frames
            .last_mut()
            .expect("analyzer always has a frame")
            .push((name.to_string(), old));
    }

    fn push_frame(&mut self) {
        self.frames.push(Vec::new());
    }

    fn pop_frame(&mut self) {
        let frame = self.frames.pop().expect("frame underflow");
        if let Some(env) = self.env.as_mut() {
            for (name, old) in frame.into_iter().rev() {
                match old {
                    Some(v) => {
                        env.insert(name, v);
                    }
                    None => {
                        env.remove(&name);
                    }
                }
            }
        }
    }

    /// Snapshot the current environment as if every scope deeper than
    /// `depth` had exited — used for break/continue edges so the
    /// snapshot's keys line up with the loop head's.
    fn unwound_snapshot(&self, depth: usize) -> Option<Env> {
        let mut snap = self.env.clone()?;
        for frame in self.frames[depth..].iter().rev() {
            for (name, old) in frame.iter().rev() {
                match old {
                    Some(v) => {
                        snap.insert(name.clone(), v.clone());
                    }
                    None => {
                        snap.remove(name);
                    }
                }
            }
        }
        Some(snap)
    }

    fn finding(&mut self, code: &'static str, focus: Option<String>, msg: String) {
        if !self.report {
            return;
        }
        let span = self.cur_span;
        let dedup = (
            code.to_string(),
            span.line,
            span.start,
            span.end,
            msg.clone(),
        );
        if self.finding_keys.insert(dedup) {
            self.findings.push(Finding {
                code,
                span,
                focus,
                msg,
            });
        }
    }

    fn finding_at(&mut self, code: &'static str, span: Span, msg: String) {
        let saved = self.cur_span;
        self.cur_span = span;
        self.finding(code, None, msg);
        self.cur_span = saved;
    }

    // ---- fact recording (reporting pass only) ----

    fn record_subscript(&mut self, site: usize, safe: bool) {
        if self.report {
            let e = self.facts.subscripts.entry(site).or_insert(safe);
            *e = *e && safe;
        }
    }

    fn record_division(&mut self, site: usize, safe: bool) {
        if self.report {
            let e = self.facts.divisions.entry(site).or_insert(safe);
            *e = *e && safe;
        }
    }

    fn record_call(&mut self, site: usize, safe: bool) {
        if self.report {
            let e = self.facts.calls.entry(site).or_insert(safe);
            *e = *e && safe;
        }
    }

    // ---- statements ----

    fn exec_stmt(&mut self, s: &'p Stmt) {
        if self.env.is_none() {
            return;
        }
        self.cur_span = s.span;
        match &s.kind {
            StmtKind::Decl(ds) => {
                for d in ds {
                    self.declare(d);
                    if self.env.is_none() {
                        return;
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.eval(e);
            }
            StmtKind::While { cond, body } => {
                self.exec_loop(Some(cond), None, body, s.span);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_frame();
                if let Some(i) = init {
                    self.exec_stmt(i);
                }
                self.exec_loop(cond.as_ref(), step.as_ref(), body, s.span);
                self.pop_frame();
            }
            StmtKind::If { cond, then, els } => self.exec_if(cond, then, els.as_deref(), s.span),
            StmtKind::Return(e) => {
                if let Some(x) = e {
                    self.eval(x);
                }
                self.env = None;
            }
            StmtKind::Break => {
                if let Some(depth) = self.loops.last().map(|l| l.frame_depth) {
                    if let Some(snap) = self.unwound_snapshot(depth) {
                        self.loops.last_mut().unwrap().breaks.push(snap);
                    }
                }
                self.env = None;
            }
            StmtKind::Continue => {
                if let Some(depth) = self.loops.last().map(|l| l.frame_depth) {
                    if let Some(snap) = self.unwound_snapshot(depth) {
                        self.loops.last_mut().unwrap().continues.push(snap);
                    }
                }
                self.env = None;
            }
            StmtKind::Block(body) => {
                self.push_frame();
                for st in body {
                    self.exec_stmt(st);
                }
                self.pop_frame();
            }
            StmtKind::Annotated(_, inner) => self.exec_stmt(inner),
            StmtKind::Empty => {}
        }
    }

    fn declare(&mut self, d: &'p Declarator) {
        match &d.ty {
            CType::Array(inner, n) => {
                let total = match inner.as_ref() {
                    CType::Array(_, Some(cols)) => n.unwrap_or(1) * cols,
                    _ => match n {
                        Some(n) => *n,
                        None => {
                            // `int a[];` is a definite runtime error.
                            self.env = None;
                            return;
                        }
                    },
                };
                let stride = match inner.as_ref() {
                    CType::Array(_, Some(cols)) => Some(*cols),
                    _ => None,
                };
                self.bind_decl(
                    &d.name,
                    VarState {
                        val: AVal::Ptr(PtrFact {
                            null: Nullness::NonNull,
                            extent: Some(total),
                            off: Interval::constant(0),
                            elem: ElemKind::of(&d.ty),
                        }),
                        init: InitState::Init,
                        is_array: true,
                        stride,
                    },
                );
            }
            _ => {
                let (val, init) = match &d.init {
                    Some(e) => (self.eval(e), InitState::Init),
                    None => (
                        match &d.ty {
                            CType::Float | CType::Double => AVal::Float,
                            CType::Ptr(_) => AVal::Null,
                            _ => AVal::Int(Interval::constant(0)),
                        },
                        InitState::Uninit,
                    ),
                };
                if self.env.is_none() {
                    return;
                }
                self.bind_decl(
                    &d.name,
                    VarState {
                        val,
                        init,
                        is_array: false,
                        stride: None,
                    },
                );
            }
        }
    }

    fn exec_if(&mut self, cond: &'p Expr, then: &'p Stmt, els: Option<&'p Stmt>, span: Span) {
        self.eval(cond);
        let Some(_) = self.env.as_ref() else { return };
        let saved = self.env.clone();

        self.refine(cond, true);
        let then_reachable = self.env.is_some();
        if !then_reachable {
            self.finding_at(
                "HD019",
                span,
                "condition is provably false; the then-branch never runs".into(),
            );
            self.report_dead_emits(then);
        }
        self.exec_stmt(then);
        let out_then = self.env.take();

        self.env = saved;
        self.refine(cond, false);
        if self.env.is_none() {
            if let Some(e) = els {
                self.finding_at(
                    "HD019",
                    span,
                    "condition is provably true; the else-branch never runs".into(),
                );
                self.report_dead_emits(e);
            }
        }
        if let Some(e) = els {
            self.exec_stmt(e);
        }
        let out_else = self.env.take();
        self.env = join_opt(out_then, out_else);
    }

    /// Flag `printf` statements inside a provably dead subtree.
    fn report_dead_emits(&mut self, s: &'p Stmt) {
        if !self.report {
            return;
        }
        let mut spans = Vec::new();
        collect_printf_spans(s, &mut spans);
        for sp in spans {
            self.finding_at(
                "HD019",
                sp,
                "emit in a provably dead branch never executes".into(),
            );
        }
    }

    fn exec_loop(
        &mut self,
        cond: Option<&'p Expr>,
        step: Option<&'p Expr>,
        body: &'p Stmt,
        span: Span,
    ) {
        if self.env.is_none() {
            return;
        }
        let report = self.report;
        self.report = false;
        let frame_depth = self.frames.len();

        // Phase one: silent fixpoint over the loop head.
        let mut head = self.env.clone();
        let mut iters = 0usize;
        let mut exit_breaks;
        loop {
            iters += 1;
            if iters > MAX_FIXPOINT_ITERS {
                head = head.map(havoc_all);
            }
            self.env = head.clone();
            self.loops.push(LoopCx {
                frame_depth,
                breaks: Vec::new(),
                continues: Vec::new(),
            });
            if let Some(c) = cond {
                if self.env.is_some() {
                    self.eval(c);
                    self.refine(c, true);
                }
            }
            self.exec_stmt(body);
            let lc = self.loops.pop().expect("loop frame");
            let mut after = self.env.take();
            for cenv in lc.continues {
                after = join_opt(after, Some(cenv));
            }
            self.env = after;
            if let Some(st) = step {
                if self.env.is_some() {
                    self.eval(st);
                }
            }
            let back = join_opt(head.clone(), self.env.take());
            if back == head || iters > MAX_FIXPOINT_ITERS {
                exit_breaks = lc.breaks;
                break;
            }
            head = if iters >= WIDEN_DELAY {
                match (&head, &back) {
                    (Some(h), Some(b)) => Some(widen_env(h, b)),
                    _ => back,
                }
            } else {
                back
            };
        }
        self.max_fixpoint_iters = self.max_fixpoint_iters.max(iters);
        debug_assert!(
            iters <= MAX_FIXPOINT_ITERS + 1,
            "loop fixpoint failed to converge within the bound"
        );
        self.report = report;

        // Phase two: one reporting pass over the body from the stable
        // head (facts and findings come from here; inner loops re-run
        // their own two phases recursively).
        if self.report {
            self.env = head.clone();
            self.loops.push(LoopCx {
                frame_depth,
                breaks: Vec::new(),
                continues: Vec::new(),
            });
            // The silent pass left `cur_span` at the last body
            // statement; guard-condition findings anchor at the loop
            // head.
            self.cur_span = span;
            if let Some(c) = cond {
                if self.env.is_some() {
                    self.eval(c);
                    self.refine(c, true);
                }
            }
            if head.is_some() && self.env.is_none() {
                self.finding_at(
                    "HD019",
                    span,
                    "loop condition is provably false; the body never runs".into(),
                );
                self.report_dead_emits(body);
            }
            self.exec_stmt(body);
            let lc = self.loops.pop().expect("loop frame");
            exit_breaks = lc.breaks;
        }

        // Exit state: stable head with the condition refined false,
        // joined with every break-edge snapshot.
        self.env = head.clone();
        self.cur_span = span;
        match cond {
            Some(c) => {
                if self.env.is_some() {
                    self.eval(c);
                    self.refine(c, false);
                }
            }
            None => self.env = None, // `for (;;)`: no normal exit
        }
        if self.report
            && head.is_some()
            && self.env.is_none()
            && exit_breaks.is_empty()
            && !stmt_escapes(body)
        {
            self.finding_at(
                "HD020",
                span,
                "loop condition is provably always true and the body never \
                 breaks or returns; this loop exceeds any step limit"
                    .into(),
            );
        }
        let mut out = self.env.take();
        for benv in exit_breaks {
            out = join_opt(out, Some(benv));
        }
        self.env = out;
    }

    // ---- expressions ----

    fn eval(&mut self, e: &'p Expr) -> AVal {
        if self.env.is_none() {
            return AVal::Top;
        }
        match e {
            Expr::IntLit(v) => AVal::Int(Interval::constant(*v)),
            Expr::FloatLit(_) => AVal::Float,
            Expr::CharLit(c) => AVal::Int(Interval::constant(*c as i64)),
            Expr::StrLit(s) => AVal::Ptr(PtrFact {
                null: Nullness::NonNull,
                extent: Some(s.len() + 1),
                off: Interval::constant(0),
                elem: ElemKind::Byte,
            }),
            Expr::SizeOf(ty) => AVal::Int(Interval::constant(ty.scalar_size() as i64)),
            Expr::Ident(name) => match self.get(name).cloned() {
                Some(vs) => {
                    if vs.init == InitState::Uninit {
                        self.finding(
                            "HD018",
                            Some(name.clone()),
                            format!(
                                "`{name}` is read before it is ever assigned \
                                 (it still holds the declaration default)"
                            ),
                        );
                    }
                    vs.val
                }
                None => {
                    // Unknown variable: definite runtime error.
                    self.env = None;
                    AVal::Top
                }
            },
            Expr::Unary(op, x) => self.eval_unary(*op, x),
            Expr::PostInc(x) => {
                let old = self.eval(x);
                let new = self.abstract_num_add(&old, 1);
                self.assign_to(x, new);
                old
            }
            Expr::PostDec(x) => {
                let old = self.eval(x);
                let new = self.abstract_num_add(&old, -1);
                self.assign_to(x, new);
                old
            }
            Expr::Binary(op, a, b) => self.eval_binary(e, *op, a, b),
            Expr::Assign(op, lhs, rhs) => {
                let rv = self.eval(rhs);
                let nv = if *op == AssignOp::None {
                    rv
                } else {
                    let old = self.eval(lhs);
                    let bop = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Rem => BinOp::Rem,
                        AssignOp::None => unreachable!(),
                    };
                    if matches!(bop, BinOp::Div | BinOp::Rem) {
                        self.division_effect(None, &old, &rv);
                    }
                    abinary(bop, &old, &rv)
                };
                self.assign_to(lhs, nv.clone());
                nv
            }
            Expr::Cond(c, t, f) => {
                self.eval(c);
                let saved = self.env.clone();
                self.refine(c, true);
                let tv = if self.env.is_some() {
                    Some(self.eval(t))
                } else {
                    None
                };
                let env_t = self.env.take();
                self.env = saved;
                self.refine(c, false);
                let fv = if self.env.is_some() {
                    Some(self.eval(f))
                } else {
                    None
                };
                let env_f = self.env.take();
                self.env = join_opt(env_t, env_f);
                match (tv, fv) {
                    (Some(a), Some(b)) => a.join(&b),
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => AVal::Top,
                }
            }
            Expr::Call(name, args) => self.eval_call(e, name, args),
            Expr::Index(base, idx) => self.subscript(e, base, idx),
            Expr::Cast(ty, x) => {
                let v = self.eval(x);
                match ty {
                    CType::Float | CType::Double => match v {
                        AVal::Int(_) => AVal::Float,
                        other => other,
                    },
                    CType::Int | CType::Char => match v {
                        AVal::Float => AVal::Int(Interval::FULL),
                        other => other,
                    },
                    _ => v,
                }
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, x: &'p Expr) -> AVal {
        match op {
            UnOp::AddrOf => match x {
                Expr::Ident(name) => match self.get(name).cloned() {
                    Some(vs) if vs.is_array => vs.val,
                    Some(_) => AVal::SlotRef(name.clone()),
                    None => {
                        self.env = None;
                        AVal::Top
                    }
                },
                Expr::Index(base, idx) => {
                    // `&a[i]` resolves the same checked position and
                    // yields a pointer into the same buffer.
                    self.subscript_place(x, base, idx)
                }
                _ => {
                    self.env = None; // definite "unsupported address-of"
                    AVal::Top
                }
            },
            UnOp::Deref => {
                let v = self.eval(x);
                match v {
                    AVal::Ptr(f) => f.elem.read_value(),
                    AVal::SlotRef(name) => self
                        .get(&name)
                        .map(|vs| vs.val.clone())
                        .unwrap_or(AVal::Top),
                    AVal::Null => {
                        self.env = None; // definite null dereference
                        AVal::Top
                    }
                    AVal::Int(_) | AVal::Float => {
                        self.env = None;
                        AVal::Top
                    }
                    AVal::Top => AVal::Top,
                }
            }
            UnOp::Neg => match self.eval(x) {
                AVal::Int(i) => AVal::Int(i.neg()),
                AVal::Float => AVal::Float,
                AVal::Top => AVal::Top,
                _ => {
                    self.env = None;
                    AVal::Top
                }
            },
            UnOp::Not => {
                let v = self.eval(x);
                AVal::Int(match v.definitely_truthy() {
                    Some(t) => Interval::constant(!t as i64),
                    None => Interval::range(0, 1),
                })
            }
            UnOp::BitNot => match self.eval(x) {
                AVal::Int(i) => AVal::Int(i.bitnot()),
                AVal::Top => AVal::Int(Interval::FULL),
                _ => {
                    self.env = None; // "~ on non-int" is definite
                    AVal::Top
                }
            },
            UnOp::PreInc => {
                let old = self.eval(x);
                let new = self.abstract_num_add(&old, 1);
                self.assign_to(x, new.clone());
                new
            }
            UnOp::PreDec => {
                let old = self.eval(x);
                let new = self.abstract_num_add(&old, -1);
                self.assign_to(x, new.clone());
                new
            }
        }
    }

    /// Abstract `num_add` (++/--): SlotRef/Null fault definitely.
    fn abstract_num_add(&mut self, v: &AVal, d: i64) -> AVal {
        match v {
            AVal::Int(i) => AVal::Int(i.add(&Interval::constant(d))),
            AVal::Float => AVal::Float,
            AVal::Ptr(f) => AVal::Ptr(PtrFact {
                off: f.off.add(&Interval::constant(d)),
                ..f.clone()
            }),
            AVal::Null | AVal::SlotRef(_) => {
                self.env = None;
                AVal::Top
            }
            AVal::Top => AVal::Top,
        }
    }

    fn eval_binary(&mut self, site: &'p Expr, op: BinOp, a: &'p Expr, b: &'p Expr) -> AVal {
        let va = self.eval(a);
        if op == BinOp::And || op == BinOp::Or {
            let skip_b = matches!(
                (op, va.definitely_truthy()),
                (BinOp::And, Some(false)) | (BinOp::Or, Some(true))
            );
            if skip_b {
                return AVal::Int(Interval::constant((op == BinOp::Or) as i64));
            }
            if va.definitely_truthy().is_some() {
                // b definitely evaluates.
                let vb = self.eval(b);
                return AVal::Int(vb.truth_interval());
            }
            // b may or may not evaluate: fork the environment.
            let saved = self.env.clone();
            self.eval(b);
            self.env = join_opt(self.env.take(), saved);
            return AVal::Int(Interval::range(0, 1));
        }
        let vb = self.eval(b);
        if matches!(op, BinOp::Div | BinOp::Rem) {
            self.division_effect(Some(key(site)), &va, &vb);
        }
        abinary(op, &va, &vb)
    }

    /// Shared HD017/fact logic for `/` and `%` (expression sites and
    /// compound assignments; only the former are elidable).
    fn division_effect(&mut self, site: Option<usize>, num: &AVal, den: &AVal) {
        let safe = matches!(den, AVal::Int(i) if !i.contains_zero());
        if let Some(k) = site {
            self.record_division(k, safe);
        }
        if let (AVal::Int(_), AVal::Int(di)) = (num, den) {
            if di.as_constant() == Some(0) {
                self.finding(
                    "HD017",
                    None,
                    "division or remainder by a provably zero denominator \
                     always faults here"
                        .into(),
                );
                self.env = None;
            }
        }
    }

    // ---- subscripts ----

    /// Abstract `index_target` for a read: returns the element value.
    fn subscript(&mut self, site: &'p Expr, base: &'p Expr, idx: &'p Expr) -> AVal {
        match self.resolve_subscript(site, base, idx) {
            Some(elem) => elem.read_value(),
            None => AVal::Top,
        }
    }

    /// Abstract `&base[idx]`: a pointer into the same buffer at the
    /// checked position.
    fn subscript_place(&mut self, site: &'p Expr, base: &'p Expr, idx: &'p Expr) -> AVal {
        match self.resolve_place(site, base, idx) {
            Some((fact, pos)) => AVal::Ptr(PtrFact {
                null: Nullness::NonNull,
                extent: fact.extent,
                off: pos,
                elem: fact.elem,
            }),
            None => AVal::Top,
        }
    }

    fn resolve_subscript(
        &mut self,
        site: &'p Expr,
        base: &'p Expr,
        idx: &'p Expr,
    ) -> Option<ElemKind> {
        self.resolve_place(site, base, idx).map(|(f, _)| f.elem)
    }

    /// Mirror of the interpreter/native `index_target`: index first,
    /// then either the 2-D strided fast path (when the inner base is a
    /// declared 2-D array *and* its slot provably holds a pointer) or
    /// the generic path. Records the site's fact and any definite
    /// out-of-bounds finding. Returns the buffer fact and element
    /// position when the base is a definite pointer.
    fn resolve_place(
        &mut self,
        site: &'p Expr,
        base: &'p Expr,
        idx: &'p Expr,
    ) -> Option<(PtrFact, Interval)> {
        let iv = self.eval(idx);
        let i = iv.int_itv();
        // 2-D strided fast path.
        if let Expr::Index(inner_base, inner_idx) = base {
            if let Expr::Ident(name) = inner_base.as_ref() {
                let info = self
                    .get(name)
                    .and_then(|vs| vs.stride.map(|s| (s, vs.val.clone())));
                if let Some((stride, val)) = info {
                    if let AVal::Ptr(f) = &val {
                        if f.null == Nullness::NonNull {
                            // Fast path definitely taken.
                            let row = self.eval(inner_idx).int_itv();
                            let pos = f
                                .off
                                .add(&row.mul(&Interval::constant(stride as i64)))
                                .add(&i);
                            let f = f.clone();
                            self.check_site(site, &f, pos);
                            return Some((f, pos));
                        }
                    }
                    // Path is uncertain (slot may not hold a pointer):
                    // fall through to a generic evaluation of the base,
                    // whose side effects over-approximate both paths,
                    // and leave the site unknown.
                    self.eval(base);
                    self.record_subscript(key(site), false);
                    return None;
                }
            }
        }
        // Generic path: evaluate the base as an expression.
        let bv = self.eval(base);
        match bv {
            AVal::Ptr(f) if f.null == Nullness::NonNull => {
                let pos = f.off.add(&i);
                self.check_site(site, &f, pos);
                Some((f, pos))
            }
            AVal::Ptr(_) | AVal::Top => {
                self.record_subscript(key(site), false);
                None
            }
            AVal::Null | AVal::Int(_) | AVal::Float | AVal::SlotRef(_) => {
                // Definite "indexing non-pointer" fault.
                self.record_subscript(key(site), false);
                self.env = None;
                None
            }
        }
    }

    /// Record the bounds verdict for a subscript site with a definite
    /// pointer base, and kill the environment on a provable fault.
    fn check_site(&mut self, site: &'p Expr, f: &PtrFact, pos: Interval) {
        let extent = f.extent.map(|e| e.min(i64::MAX as usize) as i64);
        let safe = pos.lo >= 0 && extent.is_some_and(|e| pos.hi < e);
        self.record_subscript(key(site), safe);
        let oob_low = pos.hi < 0;
        let oob_high = extent.is_some_and(|e| pos.lo >= e);
        if oob_low || oob_high {
            let what = match extent {
                Some(e) => format!(
                    "subscript is provably out of bounds: position in \
                     [{}, {}] against a buffer of {} element(s)",
                    pos.lo, pos.hi, e
                ),
                None => format!(
                    "subscript is provably out of bounds: position in \
                     [{}, {}] is negative",
                    pos.lo, pos.hi
                ),
            };
            let focus = base_name(site);
            self.finding("HD016", focus, what);
            self.env = None;
        }
    }

    // ---- assignment targets ----

    fn assign_to(&mut self, lhs: &'p Expr, v: AVal) {
        if self.env.is_none() {
            return;
        }
        match lhs {
            Expr::Ident(name) => self.write_var(name, v),
            Expr::Index(base, idx) => {
                // Buffer contents are not tracked; resolving records
                // the site fact and any definite fault.
                self.resolve_place(lhs, base, idx);
            }
            Expr::Unary(UnOp::Deref, x) => {
                let tv = self.eval(x);
                match tv {
                    AVal::Ptr(_) => {} // contents untracked
                    AVal::SlotRef(name) => self.write_var(&name, v),
                    AVal::Null | AVal::Int(_) | AVal::Float => {
                        self.env = None; // definite non-pointer store
                    }
                    AVal::Top => self.havoc_all_scalars(),
                }
            }
            Expr::Cast(_, inner) => self.assign_to(inner, v),
            _ => {
                self.env = None; // definite "unsupported assignment target"
            }
        }
    }

    // ---- calls ----

    fn eval_call(&mut self, site: &'p Expr, name: &'p str, args: &'p [Expr]) -> AVal {
        // User-defined functions shadow builtins.
        if let Some(f) = self.prog.func(name) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a));
            }
            // The callee may write through any slot reference it was
            // handed and may rebind nothing else.
            for v in &vals {
                if let AVal::SlotRef(n) = v {
                    let n = n.clone();
                    self.havoc_var(&n);
                }
            }
            self.record_call(key(site), false);
            if vals.len() != f.params.len() {
                self.env = None; // definite arity fault
            }
            return AVal::Top;
        }
        if let Some(need) = builtin_min_args(name) {
            if args.len() < need {
                // Arity fault before any argument evaluates.
                self.record_call(key(site), false);
                self.env = None;
                return AVal::Top;
            }
        }
        let sitek = key(site);
        match name {
            "printf" => self.eval_printf(sitek, args),
            "scanf" => self.eval_scanf(sitek, args),
            "getline" => {
                // EOF returns -1 without touching the target; otherwise
                // the first argument's slot is rebound to a fresh line
                // buffer of unknown extent.
                let eof_env = self.env.clone();
                let target = self.eval(&args[0]);
                let fresh = AVal::Ptr(PtrFact {
                    null: Nullness::NonNull,
                    extent: None,
                    off: Interval::constant(0),
                    elem: ElemKind::Byte,
                });
                let mut proven = false;
                match target {
                    AVal::SlotRef(n) => {
                        let n = n.clone();
                        self.write_var(&n, fresh);
                        proven = true;
                    }
                    AVal::Top => self.havoc_all_scalars(),
                    _ => self.env = None, // definite "getline needs &var"
                }
                self.env = join_opt(self.env.take(), eof_env);
                self.record_call(sitek, proven);
                AVal::Int(Interval::at_least(-1))
            }
            "getWord" | "getTok" => {
                for a in args.iter().take(5) {
                    self.eval(a);
                }
                self.record_call(sitek, false);
                AVal::Int(Interval::at_least(-1))
            }
            "strfind" => {
                self.eval(&args[0]);
                self.eval(&args[1]);
                self.record_call(sitek, false);
                AVal::Int(Interval::at_least(-1))
            }
            "strcmp" => {
                self.eval(&args[0]);
                self.eval(&args[1]);
                self.record_call(sitek, false);
                AVal::Int(Interval::range(-1, 1))
            }
            "strcpy" => {
                let dst = self.eval(&args[0]);
                self.eval(&args[1]);
                self.record_call(sitek, false);
                dst
            }
            "strlen" => {
                self.eval(&args[0]);
                self.record_call(sitek, false);
                AVal::Int(Interval::at_least(0))
            }
            "atoi" => {
                self.eval(&args[0]);
                self.record_call(sitek, false);
                AVal::Int(Interval::FULL)
            }
            "atof" => {
                self.eval(&args[0]);
                self.record_call(sitek, false);
                AVal::Float
            }
            "sqrt" | "exp" | "log" | "fabs" | "floor" | "ceil" | "erf" => {
                let v = self.eval(&args[0]);
                self.numeric_arg_effect(sitek, &[v]);
                AVal::Float
            }
            "pow" => {
                let a = self.eval(&args[0]);
                let b = self.eval(&args[1]);
                self.numeric_arg_effect(sitek, &[a, b]);
                AVal::Float
            }
            "malloc" | "calloc" => {
                let n0 = self.eval(&args[0]);
                let mut counts = vec![n0];
                if name == "calloc" {
                    counts.push(self.eval(&args[1]));
                }
                let total = counts
                    .iter()
                    .map(const_nonneg)
                    .try_fold(1usize, |acc, c| c.and_then(|c| acc.checked_mul(c)));
                // `as_int` faults on a definite pointer/slot-ref count.
                self.numeric_arg_effect(sitek, &counts);
                AVal::Ptr(PtrFact {
                    null: Nullness::NonNull,
                    extent: total.map(|t| t.max(1)),
                    off: Interval::constant(0),
                    elem: ElemKind::Byte,
                })
            }
            "free" => {
                for a in args {
                    self.eval(a);
                }
                self.record_call(sitek, true);
                AVal::Int(Interval::constant(0))
            }
            "abs" => {
                let v = self.eval(&args[0]);
                let out = match &v {
                    AVal::Int(i) => {
                        if i.contains(i64::MIN) {
                            Interval::FULL
                        } else if i.lo >= 0 {
                            *i
                        } else if i.hi <= 0 {
                            i.neg()
                        } else {
                            Interval::range(0, i.lo.abs().max(i.hi.abs()))
                        }
                    }
                    _ => Interval::FULL,
                };
                self.numeric_arg_effect(sitek, &[v]);
                AVal::Int(out)
            }
            _ => {
                // Unknown function: definite error, arguments never
                // evaluated.
                self.record_call(sitek, false);
                self.env = None;
                AVal::Top
            }
        }
    }

    /// `as_int`/`as_f64` coercion effect for numeric builtins: a
    /// definite pointer/slot-ref argument always faults; definite
    /// numerics prove the call site.
    fn numeric_arg_effect(&mut self, site: usize, vals: &[AVal]) {
        let mut proven = true;
        for v in vals {
            match v {
                AVal::Int(_) | AVal::Float => {}
                AVal::Ptr(_) | AVal::Null | AVal::SlotRef(_) => {
                    self.env = None;
                    proven = false;
                }
                AVal::Top => proven = false,
            }
        }
        self.record_call(site, proven);
    }

    fn eval_printf(&mut self, site: usize, args: &'p [Expr]) -> AVal {
        let Expr::StrLit(fmt) = &args[0] else {
            // Definite "printf needs a literal format".
            self.record_call(site, false);
            self.env = None;
            return AVal::Top;
        };
        let segs = parse_printf(fmt);
        let nconvs = segs
            .iter()
            .filter(|s| matches!(s, PSeg::Conv { .. }))
            .count();
        if nconvs + 1 > args.len() {
            self.finding(
                "HD021",
                None,
                format!(
                    "printf format has {nconvs} conversion(s) but only {} \
                     value argument(s); the call always faults",
                    args.len() - 1
                ),
            );
        } else if args.len() > nconvs + 1 {
            self.finding(
                "HD021",
                None,
                format!(
                    "printf format has {nconvs} conversion(s); the extra {} \
                     argument(s) are never evaluated",
                    args.len() - 1 - nconvs
                ),
            );
        }
        let mut idx = 1usize;
        let mut proven = true;
        for seg in &segs {
            let PSeg::Conv { conv, .. } = seg else {
                continue;
            };
            if idx >= args.len() {
                // "printf: not enough arguments" at render time.
                self.env = None;
                self.record_call(site, false);
                return AVal::Top;
            }
            let v = self.eval(&args[idx]);
            idx += 1;
            match conv {
                b'd' | b'i' | b'u' | b'c' => {
                    match &v {
                        AVal::Int(_) | AVal::Float => {}
                        AVal::Ptr(_) | AVal::Null | AVal::SlotRef(_) => {
                            self.finding(
                                "HD021",
                                None,
                                format!(
                                    "printf %{} argument is provably not \
                                     numeric; the call always faults",
                                    *conv as char
                                ),
                            );
                            self.env = None;
                            self.record_call(site, false);
                            return AVal::Top;
                        }
                        AVal::Top => proven = false,
                    }
                    if *conv == b'c' {
                        if let AVal::Int(i) = &v {
                            if i.meet(&Interval::range(0, 255)).is_none() {
                                self.finding(
                                    "HD021",
                                    None,
                                    format!(
                                        "printf %c argument is provably \
                                         outside [0, 255] (range [{}, {}]); \
                                         it truncates",
                                        i.lo, i.hi
                                    ),
                                );
                            }
                        }
                    }
                }
                b's' => {
                    match &v {
                        AVal::Int(_) | AVal::Float | AVal::Null | AVal::SlotRef(_) => {
                            self.finding(
                                "HD021",
                                None,
                                "printf %s argument is provably not a string \
                                 pointer; the call always faults"
                                    .into(),
                            );
                            self.env = None;
                            self.record_call(site, false);
                            return AVal::Top;
                        }
                        AVal::Ptr(f)
                            if f.null == Nullness::NonNull
                                && matches!(f.elem, ElemKind::Int | ElemKind::Double) =>
                        {
                            // cstr on a non-byte buffer always faults.
                            self.finding(
                                "HD021",
                                None,
                                "printf %s argument provably points at a \
                                 non-character buffer; the call always faults"
                                    .into(),
                            );
                            self.env = None;
                            self.record_call(site, false);
                            return AVal::Top;
                        }
                        _ => proven = false, // cstr termination unprovable here
                    }
                }
                b'f' | b'e' | b'g' => match &v {
                    AVal::Int(_) | AVal::Float => {}
                    AVal::Ptr(_) | AVal::Null | AVal::SlotRef(_) => {
                        self.finding(
                            "HD021",
                            None,
                            format!(
                                "printf %{} argument is provably not numeric; \
                                 the call always faults",
                                *conv as char
                            ),
                        );
                        self.env = None;
                        self.record_call(site, false);
                        return AVal::Top;
                    }
                    AVal::Top => proven = false,
                },
                other => {
                    self.finding(
                        "HD021",
                        None,
                        format!(
                            "printf conversion %{} is unsupported; the call \
                             always faults",
                            *other as char
                        ),
                    );
                    self.env = None;
                    self.record_call(site, false);
                    return AVal::Top;
                }
            }
        }
        self.record_call(site, proven);
        AVal::Int(Interval::at_least(0))
    }

    fn eval_scanf(&mut self, site: usize, args: &'p [Expr]) -> AVal {
        let Expr::StrLit(fmt) = &args[0] else {
            self.record_call(site, false);
            self.env = None;
            return AVal::Top;
        };
        let convs = parse_scanf(fmt);
        if convs.len() != args.len() - 1 {
            self.finding(
                "HD021",
                None,
                format!(
                    "scanf format has {} conversion(s) but {} destination \
                     argument(s); the extras are ignored",
                    convs.len(),
                    args.len() - 1
                ),
            );
        }
        // At end of input scanf returns -1 without evaluating any
        // destination; otherwise destinations are evaluated in order.
        let eof_env = self.env.clone();
        let matched_max = convs.len().min(args.len() - 1);
        let mut proven = true;
        for (ci, conv) in convs.iter().enumerate().take(args.len() - 1) {
            let dv = self.eval(&args[1 + ci]);
            match conv.as_str() {
                "%s" => match &dv {
                    AVal::Ptr(f)
                        if f.null == Nullness::NonNull
                            && matches!(f.elem, ElemKind::Byte | ElemKind::Unknown) =>
                    {
                        proven = false; // space check unprovable
                    }
                    AVal::Top => proven = false,
                    _ => {
                        self.finding(
                            "HD021",
                            None,
                            "scanf %s destination is provably not a character \
                             buffer; the call always faults"
                                .into(),
                        );
                        self.env = None;
                        self.record_call(site, false);
                        return AVal::Top;
                    }
                },
                "%d" | "%ld" | "%i" | "%u" | "%f" | "%lf" | "%g" | "%e" => {
                    let stored = match conv.as_str() {
                        "%d" | "%ld" | "%i" | "%u" => AVal::Int(Interval::FULL),
                        _ => AVal::Float,
                    };
                    match &dv {
                        AVal::SlotRef(n) => {
                            let n = n.clone();
                            self.write_var(&n, stored);
                        }
                        AVal::Ptr(_) => proven = false, // buffer store, kind-checked at runtime
                        AVal::Top => {
                            self.havoc_all_scalars();
                            proven = false;
                        }
                        AVal::Int(_) | AVal::Float | AVal::Null => {
                            self.finding(
                                "HD021",
                                None,
                                format!(
                                    "scanf {conv} destination is provably not \
                                     a pointer; the call always faults"
                                ),
                            );
                            self.env = None;
                            self.record_call(site, false);
                            return AVal::Top;
                        }
                    }
                }
                other => {
                    self.finding(
                        "HD021",
                        None,
                        format!(
                            "scanf conversion {other} is unsupported; the \
                             call always faults"
                        ),
                    );
                    self.env = None;
                    self.record_call(site, false);
                    return AVal::Top;
                }
            }
        }
        self.env = join_opt(self.env.take(), eof_env);
        self.record_call(site, proven);
        AVal::Int(Interval::range(-1, matched_max as i64))
    }

    // ---- refinement ----

    /// Constrain the environment assuming `cond` evaluated to `want`.
    /// Purely a meet: side effects were already applied by `eval`.
    fn refine(&mut self, cond: &Expr, want: bool) {
        if self.env.is_none() {
            return;
        }
        match cond {
            Expr::Unary(UnOp::Not, x) => self.refine(x, !want),
            Expr::Cast(_, x) => self.refine(x, want),
            Expr::Binary(BinOp::And, a, b) if want => {
                self.refine(a, true);
                self.refine(b, true);
            }
            Expr::Binary(BinOp::Or, a, b) if !want => {
                self.refine(a, false);
                self.refine(b, false);
            }
            Expr::Binary(op, a, b)
                if matches!(
                    op,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
                ) =>
            {
                self.refine_cmp(*op, a, b, want)
            }
            other => self.refine_truthy(other, want),
        }
    }

    fn refine_truthy(&mut self, e: &Expr, want: bool) {
        // A condition with a provable truth value settles reachability
        // even when it names no variable (`if (0)`, `while (1)`).
        if let Some(i) = peek_int(self, e) {
            if i.definitely_truthy() == Some(!want) {
                self.env = None;
                return;
            }
        }
        let Some(name) = refine_target(e) else { return };
        let Some(vs) = self.get(name) else { return };
        match vs.val.clone() {
            AVal::Int(i) => {
                let refined = if want {
                    i.without(0)
                } else {
                    i.meet(&Interval::constant(0))
                };
                match refined {
                    Some(r) => self.set_val(name, AVal::Int(r)),
                    None => self.env = None,
                }
            }
            AVal::Ptr(f) => {
                if want {
                    self.set_val(
                        name,
                        AVal::Ptr(PtrFact {
                            null: Nullness::NonNull,
                            ..f
                        }),
                    );
                } else if f.null == Nullness::NonNull {
                    self.env = None;
                } else {
                    self.set_val(name, AVal::Null);
                }
            }
            AVal::Null => {
                if want {
                    self.env = None;
                }
            }
            AVal::SlotRef(_) => {
                if !want {
                    self.env = None;
                }
            }
            AVal::Float | AVal::Top => {}
        }
    }

    fn refine_cmp(&mut self, op: BinOp, a: &Expr, b: &Expr, want: bool) {
        let op = if want { op } else { flip(op) };
        let (Some(ia), Some(ib)) = (peek_int(self, a), peek_int(self, b)) else {
            return;
        };
        // A provably-false comparison settles reachability even when
        // neither side is a refinable variable.
        let decided = match op {
            BinOp::Lt => ia.definitely_lt(&ib),
            BinOp::Le => ia.definitely_le(&ib),
            BinOp::Gt => ib.definitely_lt(&ia),
            BinOp::Ge => ib.definitely_le(&ia),
            BinOp::Eq => ia.definitely_eq(&ib),
            BinOp::Ne => ia.definitely_eq(&ib).map(|x| !x),
            _ => None,
        };
        if decided == Some(false) {
            self.env = None;
            return;
        }
        if let Some(name) = refine_target(a) {
            let refined = constrain(&ia, op, &ib);
            match refined {
                Some(r) => self.set_val_if_int(name, r),
                None => {
                    self.env = None;
                    return;
                }
            }
        }
        if let Some(name) = refine_target(b) {
            let refined = constrain(&ib, swap(op), &ia);
            match refined {
                Some(r) => self.set_val_if_int(name, r),
                None => self.env = None,
            }
        }
    }

    fn set_val(&mut self, name: &str, val: AVal) {
        if let Some(env) = self.env.as_mut() {
            if let Some(vs) = env.get_mut(name) {
                vs.val = val;
            }
        }
    }

    fn set_val_if_int(&mut self, name: &str, itv: Interval) {
        if let Some(env) = self.env.as_mut() {
            if let Some(vs) = env.get_mut(name) {
                if matches!(vs.val, AVal::Int(_)) {
                    vs.val = AVal::Int(itv);
                }
            }
        }
    }
}

// ====================================================================
// Pure helpers.
// ====================================================================

/// Abstract transfer for a (non-short-circuit) binary operator over
/// success values.
fn abinary(op: BinOp, a: &AVal, b: &AVal) -> AVal {
    use BinOp::*;
    // Pointer arithmetic: a successful Add/Sub with an int on the right
    // implies the left side really was a pointer.
    if let (AVal::Ptr(f), Add | Sub) = (a, op) {
        let d = b.int_itv();
        let off = if op == Add {
            f.off.add(&d)
        } else {
            f.off.sub(&d)
        };
        if matches!(b, AVal::Int(_) | AVal::Top) {
            return AVal::Ptr(PtrFact {
                null: Nullness::NonNull,
                off,
                ..f.clone()
            });
        }
    }
    let ai = a.int_itv();
    let bi = b.int_itv();
    let both_int = matches!(a, AVal::Int(_)) && matches!(b, AVal::Int(_));
    match op {
        Lt | Le | Gt | Ge | Eq | Ne => {
            let decided = if both_int {
                match op {
                    Lt => ai.definitely_lt(&bi),
                    Le => ai.definitely_le(&bi),
                    Gt => bi.definitely_lt(&ai),
                    Ge => bi.definitely_le(&ai),
                    Eq => ai.definitely_eq(&bi),
                    Ne => ai.definitely_eq(&bi).map(|x| !x),
                    _ => unreachable!(),
                }
            } else {
                None
            };
            AVal::Int(match decided {
                Some(t) => Interval::constant(t as i64),
                None => Interval::range(0, 1),
            })
        }
        // Bitwise/shift success values are always integers.
        BitAnd => AVal::Int(ai.bitand(&bi)),
        BitOr => AVal::Int(ai.bitor(&bi)),
        BitXor => AVal::Int(ai.bitxor(&bi)),
        Shl => AVal::Int(Interval::FULL),
        Shr => AVal::Int(ai.shr(&bi)),
        Add | Sub | Mul | Div | Rem => {
            if both_int {
                AVal::Int(match op {
                    Add => ai.add(&bi),
                    Sub => ai.sub(&bi),
                    Mul => ai.mul(&bi),
                    Div => ai.div(&bi),
                    Rem => ai.rem(&bi),
                    _ => unreachable!(),
                })
            } else if matches!(a, AVal::Float) || matches!(b, AVal::Float) {
                AVal::Float
            } else {
                AVal::Top
            }
        }
        And | Or => AVal::Int(Interval::range(0, 1)),
    }
}

/// The variable a comparison side can refine: a bare identifier, or an
/// assignment whose target is one (its value equals the stored value).
fn refine_target(e: &Expr) -> Option<&str> {
    match e {
        Expr::Ident(n) => Some(n),
        Expr::Assign(_, lhs, _) => match lhs.as_ref() {
            Expr::Ident(n) => Some(n),
            _ => None,
        },
        _ => None,
    }
}

/// Side-effect-free view of an expression's integer interval, used by
/// refinement *after* the condition's effects were applied. Returns
/// `None` for floats/pointers/opaque shapes (no refinement).
fn peek_int(a: &Analyzer, e: &Expr) -> Option<Interval> {
    match e {
        Expr::IntLit(v) => Some(Interval::constant(*v)),
        Expr::CharLit(c) => Some(Interval::constant(*c as i64)),
        Expr::SizeOf(ty) => Some(Interval::constant(ty.scalar_size() as i64)),
        Expr::Ident(n) => match a.get(n)?.val {
            AVal::Int(i) => Some(i),
            _ => None,
        },
        // Post-state of the assigned variable == the comparison operand.
        Expr::Assign(_, lhs, _) => match lhs.as_ref() {
            Expr::Ident(n) => match a.get(n)?.val {
                AVal::Int(i) => Some(i),
                _ => None,
            },
            _ => None,
        },
        Expr::Unary(UnOp::Neg, x) => Some(peek_int(a, x)?.neg()),
        Expr::Binary(op, x, y)
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::BitAnd) =>
        {
            let ix = peek_int(a, x)?;
            let iy = peek_int(a, y)?;
            Some(match op {
                BinOp::Add => ix.add(&iy),
                BinOp::Sub => ix.sub(&iy),
                BinOp::Mul => ix.mul(&iy),
                BinOp::BitAnd => ix.bitand(&iy),
                _ => unreachable!(),
            })
        }
        _ => None,
    }
}

/// Constrain `x` assuming `x <op> y` holds.
fn constrain(x: &Interval, op: BinOp, y: &Interval) -> Option<Interval> {
    match op {
        BinOp::Lt => x.meet(&Interval::at_most(y.hi.checked_sub(1)?)),
        BinOp::Le => x.meet(&Interval::at_most(y.hi)),
        BinOp::Gt => x.meet(&Interval::at_least(y.lo.checked_add(1)?)),
        BinOp::Ge => x.meet(&Interval::at_least(y.lo)),
        BinOp::Eq => x.meet(y),
        BinOp::Ne => match y.as_constant() {
            Some(c) => x.without(c),
            None => Some(*x),
        },
        _ => Some(*x),
    }
}

/// `x <op> y` ⇔ `y <swap(op)> x`.
fn swap(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Negation of a comparison.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

fn const_nonneg(v: &AVal) -> Option<usize> {
    match v {
        AVal::Int(i) => i.as_constant().filter(|c| *c >= 0).map(|c| c as usize),
        _ => None,
    }
}

/// Root array/pointer name of a subscript chain, for diagnostics.
fn base_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Index(base, _) => match base.as_ref() {
            Expr::Ident(n) => Some(n.clone()),
            inner => base_name(inner),
        },
        Expr::Ident(n) => Some(n.clone()),
        _ => None,
    }
}

/// Whether `body` can leave its loop: a `break` at this nesting level,
/// or a `return` at any depth.
fn stmt_escapes(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Break | StmtKind::Return(_) => true,
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => contains_return(body),
        StmtKind::If { then, els, .. } => {
            stmt_escapes(then) || els.as_deref().is_some_and(stmt_escapes)
        }
        StmtKind::Block(body) => body.iter().any(stmt_escapes),
        StmtKind::Annotated(_, inner) => stmt_escapes(inner),
        _ => false,
    }
}

fn contains_return(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => contains_return(body),
        StmtKind::If { then, els, .. } => {
            contains_return(then) || els.as_deref().is_some_and(contains_return)
        }
        StmtKind::Block(body) => body.iter().any(contains_return),
        StmtKind::Annotated(_, inner) => contains_return(inner),
        _ => false,
    }
}

/// Statement spans whose expression trees call `printf`.
fn collect_printf_spans(s: &Stmt, out: &mut Vec<Span>) {
    fn expr_has_printf(e: &Expr) -> bool {
        let mut found = false;
        fn walk(e: &Expr, found: &mut bool) {
            if *found {
                return;
            }
            match e {
                Expr::Call(name, args) => {
                    if name == "printf" {
                        *found = true;
                        return;
                    }
                    for a in args {
                        walk(a, found);
                    }
                }
                Expr::Unary(_, x) | Expr::PostInc(x) | Expr::PostDec(x) | Expr::Cast(_, x) => {
                    walk(x, found)
                }
                Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
                    walk(a, found);
                    walk(b, found);
                }
                Expr::Cond(c, t, f) => {
                    walk(c, found);
                    walk(t, found);
                    walk(f, found);
                }
                _ => {}
            }
        }
        walk(e, &mut found);
        found
    }
    let mut exprs: Vec<&Expr> = Vec::new();
    match &s.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => exprs.push(e),
        StmtKind::Decl(ds) => {
            for d in ds {
                if let Some(e) = &d.init {
                    exprs.push(e);
                }
            }
        }
        StmtKind::While { cond, body } => {
            exprs.push(cond);
            collect_printf_spans(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_printf_spans(i, out);
            }
            if let Some(c) = cond {
                exprs.push(c);
            }
            if let Some(st) = step {
                exprs.push(st);
            }
            collect_printf_spans(body, out);
        }
        StmtKind::If { cond, then, els } => {
            exprs.push(cond);
            collect_printf_spans(then, out);
            if let Some(e) = els {
                collect_printf_spans(e, out);
            }
        }
        StmtKind::Block(body) => {
            for st in body {
                collect_printf_spans(st, out);
            }
        }
        StmtKind::Annotated(_, inner) => collect_printf_spans(inner, out),
        _ => {}
    }
    if exprs.iter().any(|e| expr_has_printf(e)) {
        out.push(s.span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn analyze(src: &str) -> ValueAnalysis {
        analyze_main(&parse(src).expect("test source parses"))
    }

    fn codes(a: &ValueAnalysis) -> Vec<&'static str> {
        a.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn growing_guard_loop_is_not_flagged_infinite() {
        // `while (i >= 0) i++` DOES terminate concretely: the
        // interpreter's wrapping_add eventually takes `i` negative. The
        // interval for `i + 1` overflows to FULL rather than saturating
        // at MAX, so the exit refinement stays satisfiable and no HD020
        // is (correctly) reported.
        let a = analyze(
            "int main() {
               int i; i = 0;
               while (i >= 0) { i = i + 1; }
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        assert!(a.max_fixpoint_iters <= MAX_FIXPOINT_ITERS);
    }

    #[test]
    fn proves_counted_loop_subscripts_safe() {
        let a = analyze(
            "int main() {
               int a[48]; int i; int s; s = 0;
               for (i = 0; i < 48; i++) { a[i] = i; s += a[i]; }
               printf(\"%d\\n\", s);
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "clean program: {:?}", a.findings);
        let (subs, _, _) = a.facts.site_counts();
        let (proven, _, _) = a.facts.proven_counts();
        assert!(subs >= 2, "both subscript sites seen: {subs}");
        assert_eq!(proven, subs, "all counted-loop subscripts proven");
    }

    #[test]
    fn non_unit_stride_still_proves() {
        let a = analyze(
            "int main() {
               int a[40]; int i;
               for (i = 0; i < 40; i += 7) { a[i] = 1; }
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let (proven, _, _) = a.facts.proven_counts();
        assert_eq!(proven, 1, "strided store proven in-bounds");
    }

    #[test]
    fn decreasing_induction_variable_proves() {
        let a = analyze(
            "int main() {
               int a[16]; int i;
               for (i = 15; i >= 0; i--) { a[i] = i; }
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let (proven, _, _) = a.facts.proven_counts();
        assert_eq!(proven, 1, "countdown store proven in-bounds");
    }

    #[test]
    fn branch_narrowing_rejoins() {
        // An unknown value clamped by two branches must be provably
        // in-bounds after the rejoin.
        let a = analyze(
            "int main() {
               int a[10]; int i; int j;
               scanf(\"%d %d\", &i, &j);
               if (i < 0) { i = 0; }
               if (i > 9) { i = 9; }
               a[i] = 1;
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let (proven, _, _) = a.facts.proven_counts();
        assert_eq!(proven, 1, "clamped subscript proven");
    }

    #[test]
    fn two_dimensional_strided_access_proves() {
        let a = analyze(
            "int main() {
               double m[4][5]; int i; int j; double s; s = 0.0;
               for (i = 0; i < 4; i++) {
                 for (j = 0; j < 5; j++) { m[i][j] = 1.0; s += m[i][j]; }
               }
               printf(\"%f\\n\", s);
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let (subs, _, _) = a.facts.site_counts();
        let (proven, _, _) = a.facts.proven_counts();
        assert_eq!(
            proven, subs,
            "2-D strided sites all proven ({proven}/{subs})"
        );
        assert!(subs >= 2);
    }

    #[test]
    fn widening_to_top_terminates_within_bound() {
        // `i` can only grow; the loop never exits and the head must
        // widen to top instead of iterating forever.
        let a = analyze(
            "int main() {
               int i; i = 0;
               while (1) { i = i + 3; if (i > 100) { i = -5; } }
               return 0;
             }",
        );
        assert!(
            a.max_fixpoint_iters <= MAX_FIXPOINT_ITERS,
            "fixpoint took {} iterations (bound {})",
            a.max_fixpoint_iters,
            MAX_FIXPOINT_ITERS
        );
        assert!(
            codes(&a).contains(&"HD020"),
            "breakless true loop flagged: {:?}",
            a.findings
        );
    }

    #[test]
    fn division_facts_and_definite_zero() {
        let a = analyze(
            "int main() {
               int d; d = 10; int x;
               x = 100 / d;
               x = 100 % (d - 10);
               return 0;
             }",
        );
        assert_eq!(codes(&a), vec!["HD017"], "{:?}", a.findings);
        let (_, dproven, _) = a.facts.proven_counts();
        assert_eq!(dproven, 1, "only the nonzero division is proven");
    }

    #[test]
    fn provable_out_of_bounds_and_uninit_reads() {
        let a = analyze(
            "int main() {
               int a[3]; int x; int y;
               y = x + 1;
               a[7] = y;
               return 0;
             }",
        );
        assert_eq!(codes(&a), vec!["HD018", "HD016"], "{:?}", a.findings);
    }

    #[test]
    fn dead_branch_and_dead_emit() {
        let a = analyze(
            "int main() {
               if (0) { printf(\"never\\n\"); }
               return 0;
             }",
        );
        let c = codes(&a);
        assert_eq!(c, vec!["HD019", "HD019"], "{:?}", a.findings);
    }

    #[test]
    fn getline_driven_loop_stays_clean_and_analysis_is_deterministic() {
        let src = "int main() {
               char *line; int nbytes; int read; int n; n = 0;
               line = malloc(200); nbytes = 200;
               while ((read = getline(&line, &nbytes, 0)) != -1) { n++; }
               printf(\"%d\\n\", n);
               return 0;
             }";
        let a = analyze(src);
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let b = analyze(src);
        let ka: Vec<_> = a.findings.iter().map(|f| (f.code, f.span.line)).collect();
        let kb: Vec<_> = b.findings.iter().map(|f| (f.code, f.span.line)).collect();
        assert_eq!(ka, kb, "repeated analysis is deterministic");
        assert_eq!(a.facts.proven_counts(), b.facts.proven_counts());
    }

    #[test]
    fn guard_refined_subscript_proves() {
        // The LR/BlackScholes idiom: a guarded store through a counter
        // that grows without bound.
        let a = analyze(
            "int main() {
               double v[13]; int n; n = 0;
               while (n < 1000) {
                 if (n < 13) { v[n] = 1.5; }
                 n++;
               }
               return 0;
             }",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.findings);
        let (proven, _, _) = a.facts.proven_counts();
        assert_eq!(proven, 1, "guarded store proven despite unbounded n");
    }
}
