//! Abstract domains for the value analysis (`absint.rs`).
//!
//! Three small lattices live here, kept free of AST concerns so they can
//! be unit-tested in isolation:
//!
//! * [`Interval`] — machine-integer ranges `[lo, hi]` over `i64`, the
//!   workhorse domain. Arithmetic mirrors the interpreter's *wrapping*
//!   semantics conservatively: any transfer function whose concrete
//!   counterpart could wrap returns [`Interval::FULL`] instead of a
//!   wrong tight bound.
//! * [`InitState`] — the initialization lattice `Uninit ⊑ MaybeInit ⊒
//!   Init` (a flat join of the two definite states).
//! * [`Nullness`] — whether a pointer-typed value may be the `V::Null`
//!   sentinel.
//!
//! All joins are commutative/associative/idempotent and all transfer
//! functions are monotone, which (together with [`Interval::widen`])
//! gives the fixpoint in `absint.rs` its termination argument.

/// An inclusive machine-integer range `[lo, hi]`, `lo <= hi`.
///
/// There is no bottom element: unreachable states are represented one
/// level up (the whole environment becomes `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the quantity may hold.
    pub lo: i64,
    /// Largest value the quantity may hold.
    pub hi: i64,
}

impl Interval {
    /// The top element: any `i64` at all.
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton interval `[c, c]`.
    pub fn constant(c: i64) -> Interval {
        Interval { lo: c, hi: c }
    }

    /// `[lo, hi]`, normalizing a crossed pair to [`Interval::FULL`]
    /// (callers should never produce one; this keeps the type total).
    pub fn range(lo: i64, hi: i64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval::FULL
        }
    }

    /// Whether `c` is inside the range.
    pub fn contains(&self, c: i64) -> bool {
        self.lo <= c && c <= self.hi
    }

    /// Whether the range admits zero — the question every division
    /// fact hinges on.
    pub fn contains_zero(&self) -> bool {
        self.contains(0)
    }

    /// Whether this is the singleton `[c, c]`.
    pub fn as_constant(&self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Least upper bound: the convex hull of the two ranges.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound, or `None` when the ranges are disjoint
    /// (i.e. the refined state is unreachable).
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Standard widening: any bound that moved since the previous
    /// iterate jumps straight to infinity. Guarantees the loop-head
    /// chain stabilizes in at most two more widening steps per
    /// variable.
    pub fn widen(&self, next: &Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// `[MIN, hi]` — everything at or below `hi`.
    pub fn at_most(hi: i64) -> Interval {
        Interval { lo: i64::MIN, hi }
    }

    /// `[lo, MAX]` — everything at or above `lo`.
    pub fn at_least(lo: i64) -> Interval {
        Interval { lo, hi: i64::MAX }
    }

    /// Abstract addition; wraps to FULL on potential overflow. Sound
    /// because `x + y` over a box attains its extremes at the corners.
    pub fn add(&self, other: &Interval) -> Interval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::FULL,
        }
    }

    /// Abstract subtraction; wraps to FULL on potential overflow.
    pub fn sub(&self, other: &Interval) -> Interval {
        match (self.lo.checked_sub(other.hi), self.hi.checked_sub(other.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::FULL,
        }
    }

    /// Abstract multiplication: extremes of a bilinear form are at the
    /// four corners; any overflowing corner degrades to FULL.
    pub fn mul(&self, other: &Interval) -> Interval {
        let corners = [
            self.lo.checked_mul(other.lo),
            self.lo.checked_mul(other.hi),
            self.hi.checked_mul(other.lo),
            self.hi.checked_mul(other.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for c in corners {
            match c {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return Interval::FULL,
            }
        }
        Interval { lo, hi }
    }

    /// Abstract negation; `-i64::MIN` wraps at runtime, so its presence
    /// forces FULL.
    pub fn neg(&self) -> Interval {
        if self.lo == i64::MIN {
            Interval::FULL
        } else {
            Interval {
                lo: -self.hi,
                hi: -self.lo,
            }
        }
    }

    /// Abstract bitwise NOT — exact, since `!x == -x - 1` is a
    /// monotone-decreasing bijection with no overflow.
    pub fn bitnot(&self) -> Interval {
        Interval {
            lo: !self.hi,
            hi: !self.lo,
        }
    }

    /// Abstract truncating division. Only meaningful when the divisor
    /// excludes zero (the caller checks); a divisor range straddling
    /// zero, or the `i64::MIN / -1` wrap case, degrades to FULL.
    pub fn div(&self, other: &Interval) -> Interval {
        if other.contains_zero() {
            // Division by zero is a runtime *error*, not a value; the
            // surviving executions are the nonzero-divisor ones, but
            // splitting the range is not worth the precision here.
            return Interval::FULL;
        }
        if self.contains(i64::MIN) && other.contains(-1) {
            // wrapping_div(i64::MIN, -1) == i64::MIN: corner evaluation
            // below would be unsound.
            return Interval::FULL;
        }
        // Divisor is entirely positive or entirely negative, so x / y
        // is monotone in each argument and corner evaluation is exact.
        let corners = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let lo = *corners.iter().min().unwrap();
        let hi = *corners.iter().max().unwrap();
        Interval { lo, hi }
    }

    /// Abstract truncating remainder. `x % y` has `|x % y| < |y|` and
    /// takes the sign of `x`, which bounds the result even when the
    /// operands are wide.
    pub fn rem(&self, other: &Interval) -> Interval {
        if other.contains_zero() {
            return Interval::FULL;
        }
        // Largest divisor magnitude, saturating |i64::MIN|.
        let m = other.lo.saturating_abs().max(other.hi.saturating_abs());
        let bound = m.saturating_sub(1);
        let lo = if self.lo >= 0 { 0 } else { -bound };
        let hi = if self.hi <= 0 { 0 } else { bound };
        // The result magnitude also never exceeds the dividend's.
        let (dlo, dhi) = (self.lo.saturating_abs(), self.hi.saturating_abs());
        let dmag = dlo.max(dhi);
        Interval {
            lo: lo.max(-dmag),
            hi: hi.min(dmag),
        }
    }

    /// Abstract bitwise AND. Exact-ish bounds for the common masking
    /// idioms; FULL when a negative operand makes sign reasoning murky.
    pub fn bitand(&self, other: &Interval) -> Interval {
        let nonneg = |i: &Interval| i.lo >= 0;
        match (nonneg(self), nonneg(other)) {
            // x & y <= min(x, y) when both are non-negative.
            (true, true) => Interval {
                lo: 0,
                hi: self.hi.min(other.hi),
            },
            // A non-negative operand upper-bounds the result and forces
            // it non-negative regardless of the other side.
            (true, false) => Interval { lo: 0, hi: self.hi },
            (false, true) => Interval {
                lo: 0,
                hi: other.hi,
            },
            (false, false) => Interval::FULL,
        }
    }

    /// Abstract bitwise OR: for non-negative operands the result stays
    /// below the next power of two covering both.
    pub fn bitor(&self, other: &Interval) -> Interval {
        if self.lo >= 0 && other.lo >= 0 {
            Interval {
                lo: self.lo.max(other.lo),
                hi: pow2_cover(self.hi.max(other.hi)),
            }
        } else {
            Interval::FULL
        }
    }

    /// Abstract bitwise XOR: same power-of-two cover as OR for
    /// non-negative operands, but no useful lower bound.
    pub fn bitxor(&self, other: &Interval) -> Interval {
        if self.lo >= 0 && other.lo >= 0 {
            Interval {
                lo: 0,
                hi: pow2_cover(self.hi.max(other.hi)),
            }
        } else {
            Interval::FULL
        }
    }

    /// Abstract right shift (the interpreter masks the count with
    /// `& 63`). Only the "non-negative value, known-constant count"
    /// case produces a useful bound.
    pub fn shr(&self, other: &Interval) -> Interval {
        if self.lo >= 0 {
            if let Some(c) = other.as_constant() {
                let c = (c & 63) as u32;
                return Interval {
                    lo: self.lo >> c,
                    hi: self.hi >> c,
                };
            }
            // Shifting a non-negative value right never grows it.
            return Interval { lo: 0, hi: self.hi };
        }
        Interval::FULL
    }

    /// Definite truthiness of the interval: `Some(false)` for `[0,0]`,
    /// `Some(true)` when zero is excluded, `None` otherwise.
    pub fn definitely_truthy(&self) -> Option<bool> {
        if self.as_constant() == Some(0) {
            Some(false)
        } else if !self.contains_zero() {
            Some(true)
        } else {
            None
        }
    }

    /// Decide `self < other` when the ranges don't overlap enough to
    /// leave it open.
    pub fn definitely_lt(&self, other: &Interval) -> Option<bool> {
        if self.hi < other.lo {
            Some(true)
        } else if self.lo >= other.hi {
            Some(false)
        } else {
            None
        }
    }

    /// Decide `self <= other` where possible.
    pub fn definitely_le(&self, other: &Interval) -> Option<bool> {
        if self.hi <= other.lo {
            Some(true)
        } else if self.lo > other.hi {
            Some(false)
        } else {
            None
        }
    }

    /// Decide `self == other` where possible (equal constants, or
    /// disjoint ranges).
    pub fn definitely_eq(&self, other: &Interval) -> Option<bool> {
        match (self.as_constant(), other.as_constant()) {
            (Some(a), Some(b)) => Some(a == b),
            _ if self.hi < other.lo || other.hi < self.lo => Some(false),
            _ => None,
        }
    }

    /// Remove `c` from the range when it sits on an endpoint; `None`
    /// when the range *was* the singleton `[c, c]` (unreachable).
    pub fn without(&self, c: i64) -> Option<Interval> {
        if self.as_constant() == Some(c) {
            None
        } else if self.lo == c {
            Some(Interval {
                lo: c + 1,
                hi: self.hi,
            })
        } else if self.hi == c {
            Some(Interval {
                lo: self.lo,
                hi: c - 1,
            })
        } else {
            Some(*self)
        }
    }
}

/// Smallest `2^k - 1 >= v` (saturating), used to bound OR/XOR results.
fn pow2_cover(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let bits = 64 - (v as u64).leading_zeros();
    if bits >= 63 {
        i64::MAX
    } else {
        (1i64 << bits) - 1
    }
}

/// The initialization lattice for scalars declared without an
/// initializer. The interpreter *defines* such slots (they read as
/// zero), so a definite pre-assignment read is a warning (HD018), not
/// an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitState {
    /// Never assigned on any path reaching this point.
    Uninit,
    /// Assigned on some paths, not on others.
    MaybeInit,
    /// Assigned on every path.
    Init,
}

impl InitState {
    /// Least upper bound (MaybeInit is the top of the flat lattice).
    pub fn join(&self, other: &InitState) -> InitState {
        if self == other {
            *self
        } else {
            InitState::MaybeInit
        }
    }
}

/// Whether a pointer-typed quantity may hold the interpreter's
/// `V::Null` sentinel (the default value of pointer declarations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Nullness {
    /// Proven to be a real buffer pointer.
    NonNull,
    /// May be `V::Null` on some path.
    MaybeNull,
}

impl Nullness {
    /// Least upper bound.
    pub fn join(&self, other: &Nullness) -> Nullness {
        if *self == Nullness::NonNull && *other == Nullness::NonNull {
            Nullness::NonNull
        } else {
            Nullness::MaybeNull
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: Interval = Interval::FULL;

    #[test]
    fn join_meet_widen_basics() {
        let a = Interval::range(0, 5);
        let b = Interval::range(3, 9);
        assert_eq!(a.join(&b), Interval::range(0, 9));
        assert_eq!(a.meet(&b), Some(Interval::range(3, 5)));
        assert_eq!(
            Interval::range(0, 2).meet(&Interval::range(5, 9)),
            None,
            "disjoint meet is unreachable"
        );
        // Widening: a moved bound jumps to infinity, a stable one stays.
        let w = a.widen(&Interval::range(0, 6));
        assert_eq!(
            w,
            Interval {
                lo: 0,
                hi: i64::MAX
            }
        );
        let w2 = a.widen(&Interval::range(-1, 5));
        assert_eq!(
            w2,
            Interval {
                lo: i64::MIN,
                hi: 5
            }
        );
        assert_eq!(a.widen(&a), a, "widen is reflexive on stable chains");
    }

    #[test]
    fn arithmetic_saturates_to_full_on_overflow() {
        let big = Interval::range(i64::MAX - 1, i64::MAX);
        assert_eq!(big.add(&Interval::constant(2)), FULL);
        assert_eq!(big.mul(&Interval::constant(3)), FULL);
        assert_eq!(Interval::constant(i64::MIN).neg(), FULL);
        assert_eq!(
            Interval::range(1, 3).add(&Interval::range(10, 20)),
            Interval::range(11, 23)
        );
        assert_eq!(
            Interval::range(-2, 3).sub(&Interval::range(1, 4)),
            Interval::range(-6, 2)
        );
        assert_eq!(
            Interval::range(-2, 3).mul(&Interval::range(-5, 4)),
            Interval::range(-15, 12)
        );
    }

    #[test]
    fn division_respects_the_min_over_minus_one_wrap() {
        // wrapping_div(i64::MIN, -1) == i64::MIN — corner evaluation
        // would claim a positive result; the domain must bail to FULL.
        assert_eq!(FULL.div(&Interval::constant(-1)), FULL);
        assert_eq!(
            Interval::range(10, 20).div(&Interval::range(2, 5)),
            Interval::range(2, 10)
        );
        assert_eq!(
            Interval::range(-9, 9).div(&Interval::constant(3)),
            Interval::range(-3, 3)
        );
        assert_eq!(
            Interval::range(10, 20).div(&Interval::range(-1, 1)),
            FULL,
            "divisor straddling zero gives no fact"
        );
    }

    #[test]
    fn remainder_is_bounded_by_divisor_and_dividend() {
        assert_eq!(
            Interval::at_least(0).rem(&Interval::constant(16)),
            Interval::range(0, 15)
        );
        assert_eq!(
            FULL.rem(&Interval::constant(10)),
            Interval::range(-9, 9),
            "sign of the dividend bounds both sides"
        );
        assert_eq!(
            Interval::range(0, 5).rem(&Interval::constant(100)),
            Interval::range(0, 5),
            "dividend magnitude tightens the bound"
        );
    }

    #[test]
    fn masking_and_shifts() {
        assert_eq!(FULL.bitand(&Interval::constant(15)), Interval::range(0, 15));
        assert_eq!(
            Interval::range(0, 7).bitand(&Interval::range(0, 100)),
            Interval::range(0, 7)
        );
        assert_eq!(
            Interval::range(0, 5).bitor(&Interval::range(0, 9)),
            Interval::range(0, 15),
            "OR bounded by the covering 2^k - 1"
        );
        assert_eq!(
            Interval::range(0, 100).shr(&Interval::constant(2)),
            Interval::range(0, 25)
        );
        assert_eq!(Interval::range(-1, 0).bitand(&Interval::range(-1, 0)), FULL);
    }

    #[test]
    fn comparisons_and_refinement_helpers() {
        let a = Interval::range(0, 4);
        let b = Interval::range(10, 20);
        assert_eq!(a.definitely_lt(&b), Some(true));
        assert_eq!(b.definitely_lt(&a), Some(false));
        assert_eq!(a.definitely_lt(&Interval::range(2, 3)), None);
        assert_eq!(a.definitely_eq(&b), Some(false));
        assert_eq!(
            Interval::constant(3).definitely_eq(&Interval::constant(3)),
            Some(true)
        );
        assert_eq!(Interval::range(1, 9).definitely_truthy(), Some(true));
        assert_eq!(Interval::constant(0).definitely_truthy(), Some(false));
        assert_eq!(Interval::range(-1, 1).definitely_truthy(), None);
        assert_eq!(
            Interval::range(0, 5).without(0),
            Some(Interval::range(1, 5))
        );
        assert_eq!(Interval::constant(0).without(0), None);
        assert_eq!(
            Interval::range(-3, 3).without(0),
            Some(Interval::range(-3, 3)),
            "interior removal keeps the hull"
        );
    }

    #[test]
    fn init_and_nullness_lattices() {
        use InitState::*;
        assert_eq!(Uninit.join(&Uninit), Uninit);
        assert_eq!(Uninit.join(&Init), MaybeInit);
        assert_eq!(Init.join(&MaybeInit), MaybeInit);
        assert_eq!(
            Nullness::NonNull.join(&Nullness::NonNull),
            Nullness::NonNull
        );
        assert_eq!(
            Nullness::NonNull.join(&Nullness::MaybeNull),
            Nullness::MaybeNull
        );
    }
}
