//! Performance lints (HD009–HD012). Each is validated against
//! `hetero-gpusim` counters by the workspace differential tests: HD009 /
//! HD011 correspond to `random_txn` global loads that texture binding
//! removes, HD010 to non-zero `divergent_lanes`, and HD012 to
//! `dropped_records` when the kvpairs hint under-provisions the KV
//! store.

use super::dataflow::RegionUnit;
use super::{push, Diag};
use crate::ast::CType;
use crate::pragma::DirectiveKind;
use crate::sema::{Placement, RegionInfo};
use std::collections::BTreeSet;

/// Run the performance family on one region.
pub fn check(unit: &RegionUnit, region: Option<&RegionInfo>, diags: &mut Vec<Diag>) {
    if let Some(region) = region {
        uncoalesced(unit, region, diags);
        readonly_firstprivate(unit, region, diags);
    }
    if unit.kind == DirectiveKind::Mapper {
        divergent_branches(unit, diags);
        kvpairs_hint(unit, diags);
    }
}

/// HD009: subscripted access to a global-memory array with a
/// non-constant subscript. Warp lanes process different records, so the
/// subscript differs per lane and the loads cannot coalesce into few
/// transactions (the simulator bills them as `Access::Random`); binding
/// the array to texture serves them from the texture cache instead.
fn uncoalesced(unit: &RegionUnit, region: &RegionInfo, diags: &mut Vec<Diag>) {
    let mut reported = BTreeSet::new();
    for site in &unit.index_sites {
        if region.placements.get(&site.array) != Some(&Placement::GlobalArray) {
            continue;
        }
        if site.const_subscript || !reported.insert(site.array.clone()) {
            continue;
        }
        push(
            diags,
            "HD009",
            site.span,
            Some(site.array.clone()),
            format!(
                "`{}` lives in global memory and is indexed by [{}], which varies per \
                 thread — the loads are uncoalesced; `texture({})` would serve them \
                 from the texture cache",
                site.array,
                site.subscript_vars.join(", "),
                site.array
            ),
        );
    }
}

/// HD010: a branch inside an inner loop of a mapper region. Warp lanes
/// process different records, so inner-loop conditionals evaluate
/// differently per lane and serialize the warp (the simulator's
/// `divergent_lanes` counter). Record-level branches (loop depth 1) are
/// the map decision itself and are not flagged.
fn divergent_branches(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let mut reported_lines = BTreeSet::new();
    for b in &unit.branches {
        if b.loop_depth >= 2 && reported_lines.insert(b.span.line) {
            push(
                diags,
                "HD010",
                b.span,
                None,
                "branch inside an inner hot loop: warp lanes hold different records, \
                 so this condition diverges and serializes the warp"
                    .to_string(),
            );
        }
    }
}

/// HD011: a firstprivate array the region never writes. Each GPU thread
/// copies the array into its private space at kernel start (Algorithm 1
/// lines 20–23); a read-only array could be shared via `sharedRO`/
/// `texture` with no copies at all.
fn readonly_firstprivate(unit: &RegionUnit, region: &RegionInfo, diags: &mut Vec<Diag>) {
    let written = unit.written();
    for (var, p) in &region.placements {
        if *p != Placement::FirstPrivateArray || written.contains(var.as_str()) {
            continue;
        }
        // Only flag true arrays — pointer-typed firstprivates may alias
        // writable storage.
        if !matches!(unit.ty(var), Some(CType::Array(..))) {
            continue;
        }
        let span = unit
            .first_unguarded_read(var)
            .map(|e| e.span)
            .unwrap_or(unit.dir.span);
        push(
            diags,
            "HD011",
            span,
            Some(var.clone()),
            format!(
                "firstprivate array `{var}` is never written in the region; every \
                 thread still copies it — sharedRO({var}) or texture({var}) shares one \
                 read-only copy instead"
            ),
        );
    }
}

/// HD012: a mapper that can emit more than one pair per record (an emit
/// inside an inner loop, or several emit sites) without a `kvpairs`
/// clause. The runtime then assumes the worst-case per-record pair
/// count, which shrinks the records a thread block can take and can
/// drop records when the KV store fills (`dropped_records` in the
/// simulator).
fn kvpairs_hint(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    if unit.dir.kvpairs.is_some() {
        return;
    }
    let multi = unit.emits.len() > 1 || unit.emits.iter().any(|e| e.loop_depth >= 2);
    if !multi {
        return;
    }
    let span = unit
        .emits
        .iter()
        .find(|e| e.loop_depth >= 2)
        .map(|e| e.span)
        .unwrap_or(unit.dir.span);
    push(
        diags,
        "HD012",
        span,
        None,
        "mapper may emit several pairs per record but declares no kvpairs() bound; \
         the runtime must assume the worst case, wasting KV-store space and risking \
         dropped records"
            .to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::super::{lint_program, LintReport, Severity};
    use crate::parse::parse;
    use crate::sema::analyze;

    fn lint(src: &str) -> LintReport {
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        lint_program(src, &prog, &a)
    }

    #[test]
    fn hd009_unsized_shared_array() {
        let src = r#"
int main() {
  double *model; char word[30]; int one; int h;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) sharedRO(model)
  while (getline(&word, 0, stdin) != -1) {
    h = word[0];
    one = model[h] > 0.0;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD009").unwrap();
        assert_eq!(d.severity, Severity::PerfNote);
        assert!(d.msg.contains("texture(model)"), "{}", d.msg);
    }

    #[test]
    fn hd010_branch_in_inner_loop() {
        let src = r#"
int main() {
  char tok[16], word[30], *line; size_t nbytes = 100; int read, one, off, c, n;
  line = (char*) malloc(nbytes);
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) kvpairs(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    off = 0; one = 0; n = 0;
    while ((c = getWord(line, off, tok, read, 16)) != -1) {
      if (n > 0) { one++; }
      n++;
      off += c;
    }
    strcpy(word, tok);
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD010"));
    }

    #[test]
    fn hd011_readonly_firstprivate_array() {
        let src = r#"
int main() {
  char pat[30], word[30], *line; size_t nbytes = 100; int read, one;
  strcpy(pat, "the");
  line = (char*) malloc(nbytes);
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) \
    kvpairs(1) firstprivate(pat)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    one = strfind(line, pat) >= 0;
    strcpy(word, pat);
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD011").unwrap();
        assert!(d.msg.contains("sharedRO(pat)"), "{}", d.msg);
    }

    #[test]
    fn hd012_multi_emit_without_kvpairs() {
        let src = crate::lint::tests_support::LISTING1;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD012").unwrap();
        assert_eq!(d.severity, Severity::PerfNote);
    }

    #[test]
    fn kvpairs_hint_silences_hd012() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) kvpairs(1)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let r = lint(src);
        assert!(!r.diags.iter().any(|d| d.code == "HD012"));
    }
}
