//! Def-use fact collection for lint passes.
//!
//! Walks each annotated region **in execution order** (a `for` loop's
//! init before its condition, a loop body before its step) recording one
//! [`Event`] per variable access, plus emit sites, branch sites, and
//! array subscript sites. On top of the event stream a small
//! reaching-definitions approximation decides which reads can be reached
//! by a definition from a *previous* record iteration (the paper's
//! cross-iteration dependences): a read of `v` inside the record loop is
//! loop-carried iff no same-iteration definition of `v` precedes it in
//! execution order.

use crate::ast::*;
use crate::error::Span;
use crate::pragma::{Directive, DirectiveKind};
use crate::sema::builtin_write_args;
use std::collections::{BTreeMap, BTreeSet};

/// Kind of variable access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Value read.
    Read,
    /// Value (or element) written.
    Write,
}

/// One variable access inside a region, in execution order.
#[derive(Debug, Clone)]
pub struct Event {
    /// Root variable name.
    pub var: String,
    /// Read or write.
    pub kind: EventKind,
    /// Span of the enclosing statement (statement-granular; expressions
    /// carry no spans in this AST).
    pub span: Span,
    /// Loop nesting depth *inside* the region (the record loop is 1).
    pub loop_depth: u32,
    /// Whether the access goes through a subscript/deref (element
    /// access) rather than the whole object.
    pub element: bool,
    /// Builtin that performed the write on the variable's behalf
    /// (`getline`, `scanf`, `strcpy`, ...), if any.
    pub via_builtin: Option<&'static str>,
}

/// An emit site: `printf(fmt, args...)` inside the region.
#[derive(Debug, Clone)]
pub struct EmitSite {
    /// Statement span.
    pub span: Span,
    /// The format string.
    pub fmt: String,
    /// Root identifiers of the value arguments (after the format).
    pub args: Vec<Option<String>>,
    /// Loop depth of the emit (record loop = 1).
    pub loop_depth: u32,
}

/// A conditional inside the region.
#[derive(Debug, Clone)]
pub struct BranchSite {
    /// Statement span of the `if`.
    pub span: Span,
    /// Loop depth (record loop = 1; ≥2 means inside an inner loop).
    pub loop_depth: u32,
}

/// One `a[i]` subscript site.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// Root array variable.
    pub array: String,
    /// Statement span.
    pub span: Span,
    /// Variables appearing in the subscript expression(s).
    pub subscript_vars: Vec<String>,
    /// True when every subscript is a literal constant.
    pub const_subscript: bool,
    /// Loop depth.
    pub loop_depth: u32,
}

/// All facts collected for one annotated region.
#[derive(Debug, Clone)]
pub struct RegionUnit {
    /// Index into `Program::directives`.
    pub directive_idx: usize,
    /// The directive itself.
    pub dir: Directive,
    /// Mapper or combiner.
    pub kind: DirectiveKind,
    /// Access events in execution order.
    pub events: Vec<Event>,
    /// Emit (`printf`) sites.
    pub emits: Vec<EmitSite>,
    /// `if` sites.
    pub branches: Vec<BranchSite>,
    /// Array subscript sites.
    pub index_sites: Vec<IndexSite>,
    /// Variables declared inside the region (always private).
    pub inner_decls: BTreeSet<String>,
    /// Types of outer (main-level) variables.
    pub outer_types: BTreeMap<String, CType>,
    /// Variables acting as the raw input record buffer (first argument
    /// of `getline`/`getWord`/`getTok` record reads).
    pub input_buffers: BTreeSet<String>,
    /// Compound assignments `((op, target), span)` seen in the region,
    /// for reduction-operator checks.
    pub compound_ops: Vec<((AssignOp, String), Span)>,
    /// Whole-source text (for snippet rendering decisions).
    pub src_len: usize,
}

impl RegionUnit {
    /// Outer variables referenced in the region.
    pub fn used(&self) -> BTreeSet<&str> {
        self.events
            .iter()
            .map(|e| e.var.as_str())
            .filter(|v| self.is_outer(v))
            .collect()
    }

    /// Outer variables written in the region.
    pub fn written(&self) -> BTreeSet<&str> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .map(|e| e.var.as_str())
            .filter(|v| self.is_outer(v))
            .collect()
    }

    /// Reaching-definitions approximation: variables with a read not
    /// preceded (in execution order) by any same-region definition — the
    /// value reaching the read may come from before the region or from a
    /// previous record iteration.
    pub fn read_before_write(&self) -> BTreeSet<&str> {
        let mut written: BTreeSet<&str> = BTreeSet::new();
        let mut rbw = BTreeSet::new();
        for e in &self.events {
            match e.kind {
                EventKind::Read => {
                    if !written.contains(e.var.as_str()) && self.is_outer(&e.var) {
                        rbw.insert(e.var.as_str());
                    }
                }
                EventKind::Write => {
                    written.insert(e.var.as_str());
                }
            }
        }
        rbw
    }

    /// First read event of `var` that no prior write dominates.
    pub fn first_unguarded_read(&self, var: &str) -> Option<&Event> {
        let mut written = false;
        for e in &self.events {
            if e.var == var {
                match e.kind {
                    EventKind::Write => written = true,
                    EventKind::Read if !written => return Some(e),
                    _ => {}
                }
            }
        }
        None
    }

    /// First write event of `var`, excluding writes performed by the
    /// input builtins themselves.
    pub fn first_explicit_write(&self, var: &str) -> Option<&Event> {
        self.events.iter().find(|e| {
            e.var == var
                && e.kind == EventKind::Write
                && !matches!(
                    e.via_builtin,
                    Some("getline" | "getWord" | "getTok" | "scanf")
                )
        })
    }

    /// Whether `var` is a main-level (outer) variable.
    pub fn is_outer(&self, var: &str) -> bool {
        self.outer_types.contains_key(var) && !self.inner_decls.contains(var)
    }

    /// Declared type of an outer variable.
    pub fn ty(&self, var: &str) -> Option<&CType> {
        self.outer_types.get(var)
    }
}

/// Collect a [`RegionUnit`] for every annotated region of `main`.
pub fn collect_regions(src: &str, program: &Program, main: &FuncDef) -> Vec<RegionUnit> {
    let mut outer_types = BTreeMap::new();
    walk_stmts(&main.body, &mut |s| {
        if let StmtKind::Decl(ds) = &s.kind {
            for d in ds {
                outer_types.insert(d.name.clone(), d.ty.clone());
            }
        }
    });

    let mut units = Vec::new();
    for (idx, dir) in program.directives.iter().enumerate() {
        let mut region: Option<&Stmt> = None;
        walk_stmts(&main.body, &mut |s| {
            if let StmtKind::Annotated(i, inner) = &s.kind {
                if *i == idx {
                    region = Some(inner.as_ref());
                }
            }
        });
        let Some(region) = region else { continue };

        let mut inner_decls = BTreeSet::new();
        let tmp = [region.clone()];
        walk_stmts(&tmp, &mut |s| {
            if let StmtKind::Decl(ds) = &s.kind {
                for d in ds {
                    inner_decls.insert(d.name.clone());
                }
            }
        });

        let mut c = Collector {
            unit: RegionUnit {
                directive_idx: idx,
                dir: dir.clone(),
                kind: dir.kind,
                events: Vec::new(),
                emits: Vec::new(),
                branches: Vec::new(),
                index_sites: Vec::new(),
                compound_ops: Vec::new(),
                inner_decls,
                outer_types: outer_types.clone(),
                input_buffers: BTreeSet::new(),
                src_len: src.len(),
            },
            loop_depth: 0,
            stmt_span: region.span,
        };
        c.stmt(region);
        units.push(c.unit);
    }
    units
}

struct Collector {
    unit: RegionUnit,
    loop_depth: u32,
    stmt_span: Span,
}

impl Collector {
    fn event(&mut self, var: &str, kind: EventKind, element: bool, via: Option<&'static str>) {
        self.unit.events.push(Event {
            var: var.to_string(),
            kind,
            span: self.stmt_span,
            loop_depth: self.loop_depth,
            element,
            via_builtin: via,
        });
    }

    fn stmt(&mut self, s: &Stmt) {
        let prev = self.stmt_span;
        self.stmt_span = s.span;
        match &s.kind {
            StmtKind::Decl(ds) => {
                for d in ds {
                    if let Some(i) = &d.init {
                        self.expr(i);
                    }
                }
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.loop_depth += 1;
                self.stmt(body);
                self.loop_depth -= 1;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                    self.stmt_span = s.span;
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.loop_depth += 1;
                self.stmt(body);
                self.stmt_span = s.span;
                if let Some(st) = step {
                    self.expr(st);
                }
                self.loop_depth -= 1;
            }
            StmtKind::If { cond, then, els } => {
                self.unit.branches.push(BranchSite {
                    span: s.span,
                    loop_depth: self.loop_depth,
                });
                self.expr(cond);
                self.stmt(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Block(v) => {
                for st in v {
                    self.stmt(st);
                }
            }
            StmtKind::Annotated(_, inner) => self.stmt(inner),
            _ => {}
        }
        self.stmt_span = prev;
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(n) => self.event(&n.clone(), EventKind::Read, false, None),
            Expr::Assign(op, lhs, rhs) => {
                self.expr(rhs);
                self.lvalue_subscripts(lhs);
                if let Some(n) = root_name(lhs) {
                    if *op != AssignOp::None {
                        self.event(&n, EventKind::Read, false, None);
                        self.unit
                            .compound_ops
                            .push(((*op, n.clone()), self.stmt_span));
                    }
                    let element = !matches!(lhs.as_ref(), Expr::Ident(_));
                    self.event(&n, EventKind::Write, element, None);
                }
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                self.lvalue_subscripts(inner);
                if let Some(n) = root_name(inner) {
                    self.event(&n, EventKind::Write, false, Some("addr-of"));
                }
            }
            Expr::PostInc(x) | Expr::PostDec(x) | Expr::Unary(UnOp::PreInc | UnOp::PreDec, x) => {
                self.lvalue_subscripts(x);
                if let Some(n) = root_name(x) {
                    self.event(&n, EventKind::Read, false, None);
                    let element = !matches!(x.as_ref(), Expr::Ident(_));
                    self.event(&n, EventKind::Write, element, None);
                }
            }
            Expr::Call(name, args) => self.call(name, args),
            Expr::Unary(_, x) | Expr::Cast(_, x) => self.expr(x),
            Expr::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Index(..) => {
                self.index_site(e);
                // The subscripted read itself.
                if let Some(n) = root_name(e) {
                    self.event(&n, EventKind::Read, true, None);
                }
                // Subscript expressions are ordinary reads.
                self.subscript_exprs(e);
            }
            Expr::Cond(c, t, x) => {
                self.expr(c);
                self.expr(t);
                self.expr(x);
            }
            _ => {}
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) {
        // printf is the emit primitive (paper §3.1): record the site.
        if name == "printf" {
            let fmt = match args.first() {
                Some(Expr::StrLit(s)) => s.clone(),
                _ => String::new(),
            };
            self.unit.emits.push(EmitSite {
                span: self.stmt_span,
                fmt,
                args: args.iter().skip(1).map(root_name).collect(),
                loop_depth: self.loop_depth,
            });
        }
        // Record-input builtins define the input buffer.
        if matches!(name, "getline" | "getWord" | "getTok") {
            if let Some(n) = args.first().and_then(strip_addr_root) {
                self.unit.input_buffers.insert(n);
            }
        }
        let via: Option<&'static str> = match name {
            "getline" => Some("getline"),
            "getWord" => Some("getWord"),
            "getTok" => Some("getTok"),
            "scanf" => Some("scanf"),
            "strcpy" => Some("strcpy"),
            "strncpy" => Some("strncpy"),
            "strcat" => Some("strcat"),
            _ => None,
        };
        let write_args = builtin_write_args(name);
        for (i, a) in args.iter().enumerate() {
            if write_args.contains(&i) {
                self.lvalue_subscripts(a);
                if let Some(n) = strip_addr_root(a) {
                    self.event(&n, EventKind::Write, false, via);
                } else {
                    self.expr(a);
                }
            } else {
                self.expr(a);
            }
        }
    }

    /// Record an [`IndexSite`] for a (possibly multi-dim) subscript chain.
    fn index_site(&mut self, e: &Expr) {
        let Some(array) = root_name(e) else { return };
        let mut vars = Vec::new();
        let mut all_const = true;
        collect_subscripts(e, &mut |idx| {
            let mut has_var = false;
            walk_expr_idents(idx, &mut |n| {
                has_var = true;
                if !vars.contains(&n.to_string()) {
                    vars.push(n.to_string());
                }
            });
            if has_var || !matches!(idx, Expr::IntLit(_) | Expr::CharLit(_)) {
                all_const = matches!(idx, Expr::IntLit(_) | Expr::CharLit(_)) && all_const;
            }
        });
        self.unit.index_sites.push(IndexSite {
            array,
            span: self.stmt_span,
            subscript_vars: vars,
            const_subscript: all_const,
            loop_depth: self.loop_depth,
        });
    }

    /// Visit the subscript expressions of an lvalue (reads), without
    /// reading the root.
    fn lvalue_subscripts(&mut self, e: &Expr) {
        if matches!(e, Expr::Index(..)) {
            self.index_site(e);
        }
        match e {
            Expr::Index(b, i) => {
                self.expr(i);
                self.lvalue_subscripts(b);
            }
            Expr::Unary(UnOp::Deref, x) | Expr::Cast(_, x) => self.lvalue_subscripts(x),
            _ => {}
        }
    }

    /// Visit subscript expressions of a read chain (the root read event
    /// is emitted separately).
    fn subscript_exprs(&mut self, e: &Expr) {
        if let Expr::Index(b, i) = e {
            self.expr(i);
            self.subscript_exprs(b);
        }
    }
}

fn root_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident(n) => Some(n.clone()),
        Expr::Index(b, _) => root_name(b),
        Expr::Unary(UnOp::Deref, x) => root_name(x),
        Expr::Cast(_, x) => root_name(x),
        _ => None,
    }
}

fn strip_addr_root(e: &Expr) -> Option<String> {
    match e {
        Expr::Unary(UnOp::AddrOf, inner) => root_name(inner),
        _ => root_name(e),
    }
}

fn collect_subscripts(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    if let Expr::Index(b, i) = e {
        f(i);
        collect_subscripts(b, f);
    }
}

fn walk_expr_idents(e: &Expr, f: &mut dyn FnMut(&str)) {
    match e {
        Expr::Ident(n) => f(n),
        Expr::Unary(_, x) | Expr::Cast(_, x) | Expr::PostInc(x) | Expr::PostDec(x) => {
            walk_expr_idents(x, f)
        }
        Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
            walk_expr_idents(a, f);
            walk_expr_idents(b, f);
        }
        Expr::Cond(c, t, x) => {
            walk_expr_idents(c, f);
            walk_expr_idents(t, f);
            walk_expr_idents(x, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr_idents(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn unit(src: &str) -> RegionUnit {
        let prog = parse(src).unwrap();
        let main = prog.func("main").unwrap().clone();
        let mut units = collect_regions(src, &prog, &main);
        assert_eq!(units.len(), 1);
        units.remove(0)
    }

    const SIMPLE: &str = r#"
int main() {
  char word[30]; int one; int total; total = 0;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) {
    one = 1;
    total += one;
    printf("%s\t%d\n", word, one);
  }
}
"#;

    #[test]
    fn events_in_execution_order() {
        let u = unit(SIMPLE);
        assert!(u.written().contains("one"));
        assert!(u.written().contains("total"));
        // `total += one` reads total before any write → loop-carried.
        assert!(u.read_before_write().contains("total"));
        assert!(!u.read_before_write().contains("one"));
    }

    #[test]
    fn emit_sites_recorded() {
        let u = unit(SIMPLE);
        assert_eq!(u.emits.len(), 1);
        assert_eq!(u.emits[0].fmt, "%s\t%d\n");
        assert_eq!(
            u.emits[0].args,
            vec![Some("word".to_string()), Some("one".to_string())]
        );
        assert_eq!(u.emits[0].loop_depth, 1);
    }

    #[test]
    fn input_buffer_identified() {
        let u = unit(SIMPLE);
        assert!(u.input_buffers.contains("word"));
    }

    #[test]
    fn for_init_precedes_cond_in_events() {
        let src = r#"
int main() {
  char word[30]; int one; int c; double s;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) {
    s = 0.0;
    for (c = 0; c < 8; c++) { s = s + c; }
    one = s > 0.0;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let u = unit(src);
        assert!(!u.read_before_write().contains("c"));
        assert!(!u.read_before_write().contains("s"));
    }

    #[test]
    fn index_sites_and_branches() {
        let src = r#"
int main() {
  char word[30]; int one; double m[8]; int i;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) sharedRO(m)
  while (getline(&word, 0, stdin) != -1) {
    one = 0;
    for (i = 0; i < 8; i++) {
      if (m[i] > 0.5) { one++; }
    }
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let u = unit(src);
        assert!(u
            .index_sites
            .iter()
            .any(|s| s.array == "m" && s.subscript_vars == vec!["i".to_string()]));
        assert!(u.branches.iter().any(|b| b.loop_depth == 2));
    }
}
