//! Diagnostic type, snippet rendering, and JSON serialization.

use crate::error::Span;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program violates the MapReduce contract; results would be
    /// wrong or the simulation misleading.
    Error,
    /// Suspicious but possibly intentional; `LintLevel::Deny` rejects.
    Warning,
    /// A performance observation; never blocks compilation.
    PerfNote,
}

impl Severity {
    /// Sort rank (errors first).
    pub fn rank(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::PerfNote => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::PerfNote => write!(f, "perf-note"),
        }
    }
}

/// One structured, span-carrying finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// Stable code (`HD0xx`), registered in [`super::CODES`].
    pub code: &'static str,
    /// Severity (derived from the code's registration).
    pub severity: Severity,
    /// Source location. Statement-granular spans carry the byte range of
    /// the statement's first token; directive spans cover the pragma.
    pub span: Span,
    /// Identifier or clause name to underline inside the span, when the
    /// span itself is wider than the interesting tokens.
    pub focus: Option<String>,
    /// Human-readable message.
    pub msg: String,
}

impl Diag {
    /// Serialize to a JSON object.
    pub fn to_json(&self) -> String {
        let focus = match &self.focus {
            Some(fo) => format!("\"{}\"", json_escape(fo)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"start\":{},\"end\":{},\"focus\":{},\"message\":\"{}\"}}",
            self.code,
            self.severity,
            self.span.line,
            self.span.start,
            self.span.end,
            focus,
            json_escape(&self.msg)
        )
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] (line {}): {}",
            self.severity, self.code, self.span.line, self.msg
        )
    }
}

/// Render a finding with an underlined source snippet:
///
/// ```text
/// error[HD001]: write to sharedRO variable `n`
///   --> line 12
///    |
/// 12 |     n = n + 1;
///    |     ^
/// ```
pub fn render_diag(d: &Diag, src: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity, d.code, d.msg);
    out.push_str(&format!("  --> line {}\n", d.span.line));

    let (line_no, line_text, col, width) = locate(d, src);
    let Some(text) = line_text else {
        return out;
    };
    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{gutter} | {text}\n"));
    out.push_str(&format!(
        "{pad} | {}{}\n",
        " ".repeat(col),
        "^".repeat(width.max(1))
    ));
    out
}

/// Find the line text and the column/width to underline for a finding.
/// Preference order: the `focus` substring inside the span's byte range,
/// then the span's byte range itself, then the first non-blank column of
/// the span's line.
fn locate<'a>(d: &Diag, src: &'a str) -> (u32, Option<&'a str>, usize, usize) {
    // Byte range of interest.
    let (mut start, mut end) = if d.span.has_bytes() {
        (d.span.start as usize, d.span.end as usize)
    } else {
        (0, 0)
    };
    if let Some(focus) = &d.focus {
        let hay = if d.span.has_bytes() && (d.span.end as usize) <= src.len() {
            &src[d.span.start as usize..d.span.end as usize]
        } else {
            ""
        };
        if let Some(off) = find_ident(hay, focus) {
            start = d.span.start as usize + off;
            end = start + focus.len();
        } else if !d.span.has_bytes() {
            // Line-only span: search the line's text for the focus.
            if let Some((ls, lt)) = line_bounds(src, d.span.line) {
                if let Some(off) = find_ident(lt, focus) {
                    start = ls + off;
                    end = start + focus.len();
                }
            }
        }
    }

    if end > start && end <= src.len() {
        // Line containing `start`.
        let line_no = 1 + src[..start].bytes().filter(|&b| b == b'\n').count() as u32;
        let ls = src[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let le = src[start..]
            .find('\n')
            .map(|p| start + p)
            .unwrap_or(src.len());
        let width = end.min(le) - start;
        return (line_no, Some(&src[ls..le]), start - ls, width.max(1));
    }
    // Fall back to the whole line from the span's line number.
    match line_bounds(src, d.span.line) {
        Some((_, lt)) => {
            let col = lt.len() - lt.trim_start().len();
            (d.span.line, Some(lt), col, lt.trim().len().max(1))
        }
        None => (d.span.line, None, 0, 1),
    }
}

/// Byte offset and text of 1-based line `n`.
fn line_bounds(src: &str, n: u32) -> Option<(usize, &str)> {
    if n == 0 {
        return None;
    }
    let mut start = 0usize;
    for (i, l) in src.split('\n').enumerate() {
        if i as u32 + 1 == n {
            return Some((start, l));
        }
        start += l.len() + 1;
    }
    None
}

/// Find `ident` in `hay` at an identifier boundary (so `n` doesn't match
/// inside `nbytes`).
fn find_ident(hay: &str, ident: &str) -> Option<usize> {
    if ident.is_empty() {
        return None;
    }
    let is_word = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let hb = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(ident) {
        let at = from + rel;
        let before_ok = at == 0 || !is_word(hb[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= hb.len() || !is_word(hb[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(span: Span, focus: Option<&str>) -> Diag {
        Diag {
            code: "HD001",
            severity: Severity::Error,
            span,
            focus: focus.map(|s| s.to_string()),
            msg: "write to sharedRO variable `n`".into(),
        }
    }

    #[test]
    fn renders_byte_accurate_underline() {
        let src = "int main() {\n  n = n + 1;\n}\n";
        // Span of the `n` token on line 2 (byte 15).
        let d = diag(Span::new(2, 15, 16), None);
        let r = render_diag(&d, src);
        assert!(r.contains("error[HD001]"), "{r}");
        assert!(r.contains("2 |   n = n + 1;"), "{r}");
        // Underline at column 2 of the line (after "  ").
        assert!(r.contains("|   ^\n"), "{r}");
    }

    #[test]
    fn focus_narrows_wide_spans() {
        let src = "int main() {\n  total = total + one;\n}\n";
        // Statement-wide span covering the whole line text.
        let d = diag(Span::new(2, 15, 35), Some("one"));
        let r = render_diag(&d, src);
        assert!(r.contains("^^^"), "{r}");
        let caret_line = r.lines().last().unwrap();
        let text_line = r.lines().nth(3).unwrap();
        let col = caret_line.find('^').unwrap();
        assert_eq!(&text_line[col..col + 3], "one");
    }

    #[test]
    fn ident_boundary_respected() {
        assert_eq!(find_ident("nbytes + n", "n"), Some(9));
        assert_eq!(find_ident("nbytes", "n"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn diag_json_shape() {
        let d = diag(Span::new(3, 5, 8), Some("x"));
        let j = d.to_json();
        assert!(j.contains("\"code\":\"HD001\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"focus\":\"x\""));
    }
}
