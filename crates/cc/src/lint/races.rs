//! Race / purity checks (HD001–HD003).
//!
//! The MapReduce contract lets a region write only privatizable state:
//! locals, loop indices, and emit buffers. Writes to shared read-only
//! state are races on the GPU (every thread would write the single
//! copy); writes into the input record buffer corrupt neighbouring
//! records in the staged input; and a mapper whose value flows across
//! record iterations is not parallelizable per-record at all.

use super::dataflow::{EventKind, RegionUnit};
use super::push;
use super::Diag;
use crate::pragma::DirectiveKind;
use crate::sema::is_stream_handle;
use std::collections::BTreeSet;

/// Run the race/purity family on one region.
pub fn check(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    shared_writes(unit, diags);
    input_buffer_writes(unit, diags);
    if unit.kind == DirectiveKind::Mapper {
        cross_iteration(unit, diags);
    }
}

/// HD001: write to a `sharedRO`/`texture` variable inside the region.
fn shared_writes(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let shared: BTreeSet<&String> = unit
        .dir
        .shared_ro
        .iter()
        .chain(unit.dir.texture.iter())
        .collect();
    let mut reported = BTreeSet::new();
    for e in &unit.events {
        if e.kind == EventKind::Write && shared.contains(&e.var) && reported.insert(e.var.clone()) {
            let clause = if unit.dir.texture.contains(&e.var) {
                "texture"
            } else {
                "sharedRO"
            };
            push(
                diags,
                "HD001",
                e.span,
                Some(e.var.clone()),
                format!(
                    "`{}` is declared {clause} (read-only, shared by all GPU threads) \
                     but the region writes it — a data race on the device",
                    e.var
                ),
            );
        }
    }
}

/// HD002: write into the input record buffer. The staged input is shared
/// between threads (each thread walks its record in place), so stores
/// into it corrupt other records.
fn input_buffer_writes(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let mut reported = BTreeSet::new();
    for e in &unit.events {
        if e.kind != EventKind::Write || !unit.input_buffers.contains(&e.var) {
            continue;
        }
        // The input builtins' own writes (getline filling the buffer)
        // are the sanctioned definition, not a violation. Only element
        // stores (`line[i] = c`) and string-builtin overwrites count.
        let offending = match e.via_builtin {
            Some("getline" | "getWord" | "getTok" | "scanf" | "addr-of") => false,
            Some(_) => true, // strcpy/strncpy/strcat into the buffer
            None => e.element,
        };
        if offending && reported.insert(e.var.clone()) {
            push(
                diags,
                "HD002",
                e.span,
                Some(e.var.clone()),
                format!(
                    "the region writes into `{}`, the shared input record buffer; \
                     records are unpacked in place on the device and must stay read-only",
                    e.var
                ),
            );
        }
    }
}

/// HD003: mapper cross-iteration dependence. A variable both written in
/// the region and read before any same-iteration definition carries its
/// value from one record to the next — the per-record parallel execution
/// of the map kernel would observe a different value than the sequential
/// program.
fn cross_iteration(unit: &RegionUnit, diags: &mut Vec<Diag>) {
    let written = unit.written();
    let fp: BTreeSet<&str> = unit.dir.firstprivate.iter().map(|s| s.as_str()).collect();
    for var in unit.read_before_write() {
        if !written.contains(var) || is_stream_handle(var) || fp.contains(var) {
            // Read-only vars keep their pre-region value (firstprivate,
            // fine); explicit firstprivate acknowledges the carry.
            continue;
        }
        if let Some(e) = unit.first_unguarded_read(var) {
            push(
                diags,
                "HD003",
                e.span,
                Some(var.to_string()),
                format!(
                    "mapper reads `{var}` before writing it each record, and also \
                     writes it — its value is carried across record iterations, which \
                     per-record GPU threads cannot reproduce; initialize `{var}` at the \
                     top of the record loop or declare it firstprivate"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint_program, Severity};
    use crate::parse::parse;
    use crate::sema::analyze;

    fn lint(src: &str) -> super::super::LintReport {
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        lint_program(src, &prog, &a)
    }

    #[test]
    fn hd001_write_to_shared_ro() {
        let src = r#"
int main() {
  char word[30]; int one; int n; n = 3;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) sharedRO(n)
  while (getline(&word, 0, stdin) != -1) {
    one = n;
    n = n + 1;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD001").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.focus.as_deref(), Some("n"));
    }

    #[test]
    fn hd002_write_to_input_buffer() {
        let src = r#"
int main() {
  char word[30], *line; size_t nbytes = 100; int read, one;
  line = (char*) malloc(nbytes);
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    one = 1;
    line[0] = 'x';
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        assert!(r.diags.iter().any(|d| d.code == "HD002"));
    }

    #[test]
    fn hd003_cross_iteration_dependence() {
        let src = r#"
int main() {
  char word[30]; int one; int total; total = 0;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) {
    one = 1;
    total += one;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let r = lint(src);
        let d = r.diags.iter().find(|d| d.code == "HD003").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.focus.as_deref(), Some("total"));
    }

    #[test]
    fn combiner_carry_is_legitimate() {
        // Listing 2 intentionally carries prevWord/count across records.
        let src = crate::lint::tests_support::LISTING2;
        let r = lint(src);
        assert!(!r.diags.iter().any(|d| d.code == "HD003"), "{:?}", r.diags);
    }
}
