//! Classification verifier (HD008): recompute Algorithm 1's placement
//! decisions from the lint pass's own def-use facts and compare them
//! with what `sema::analyze` decided. The two implementations share only
//! the AST — a divergence means one of them misread the paper (both
//! kinds of bug have been caught this way; see the sema `for`-order
//! regression tests).

use super::dataflow::RegionUnit;
use super::{push, Diag};
use crate::ast::CType;
use crate::sema::{is_stream_handle, Placement, RegionInfo};
use std::collections::{BTreeMap, BTreeSet};

/// Independently recompute Algorithm 1 placements for a region.
///
/// Rules, in clause-priority order (paper §3.2):
/// 1. `texture(v)` forces the texture path.
/// 2. `sharedRO(v)`: scalars become kernel arguments (constant memory);
///    arrays with a compile-time size default to texture; unsized arrays
///    go to global memory through a device pointer.
/// 3. explicit or inferred `firstprivate`: scalars by kernel parameter,
///    arrays staged through global memory. Inference: the region reads
///    the variable's pre-region value — either it never writes it, or a
///    read precedes every same-iteration write.
/// 4. everything else is private.
pub fn recompute_placements(unit: &RegionUnit) -> BTreeMap<String, Placement> {
    let used = unit.used();
    let written = unit.written();
    let rbw = unit.read_before_write();
    let texture: BTreeSet<&str> = unit.dir.texture.iter().map(|s| s.as_str()).collect();
    let shared_ro: BTreeSet<&str> = unit.dir.shared_ro.iter().map(|s| s.as_str()).collect();
    let mut firstprivate: BTreeSet<&str> =
        unit.dir.firstprivate.iter().map(|s| s.as_str()).collect();

    for v in &used {
        if firstprivate.contains(v) || shared_ro.contains(v) || texture.contains(v) {
            continue;
        }
        let w = written.contains(v);
        let reads_initial = rbw.contains(v);
        if (!w && !is_stream_handle(v)) || (w && reads_initial) {
            firstprivate.insert(v);
        }
    }

    let is_arr = |v: &str| matches!(unit.ty(v), Some(CType::Array(..)) | Some(CType::Ptr(_)));

    let mut out = BTreeMap::new();
    for v in used {
        let p = if texture.contains(v) {
            Placement::TextureArray
        } else if shared_ro.contains(v) {
            if is_arr(v) {
                match unit.ty(v) {
                    Some(CType::Array(_, Some(_))) => Placement::TextureArray,
                    _ => Placement::GlobalArray,
                }
            } else {
                Placement::ConstantScalar
            }
        } else if firstprivate.contains(v) {
            if is_arr(v) {
                Placement::FirstPrivateArray
            } else {
                Placement::FirstPrivateScalar
            }
        } else {
            Placement::Private
        };
        out.insert(v.to_string(), p);
    }
    out
}

/// HD008: report every variable whose recomputed placement differs from
/// the sema decision, and any variable only one side classified.
pub fn check(unit: &RegionUnit, region: &RegionInfo, diags: &mut Vec<Diag>) {
    let ours = recompute_placements(unit);
    let theirs = &region.placements;
    let all: BTreeSet<&String> = ours.keys().chain(theirs.keys()).collect();
    for v in all {
        match (ours.get(v), theirs.get(v)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => {
                let span = unit
                    .first_explicit_write(v)
                    .or_else(|| unit.first_unguarded_read(v))
                    .map(|e| e.span)
                    .unwrap_or(unit.dir.span);
                push(
                    diags,
                    "HD008",
                    span,
                    Some(v.clone()),
                    format!(
                        "classification divergence for `{v}`: verifier says {}, \
                         sema::analyze says {} — one of the two misapplies Algorithm 1",
                        fmt_placement(a),
                        fmt_placement(b)
                    ),
                );
            }
        }
    }
}

fn fmt_placement(p: Option<&Placement>) -> String {
    match p {
        Some(p) => format!("{p:?}"),
        None => "(not classified)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{dataflow, lint_program};
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    #[test]
    fn verifier_agrees_with_sema_on_listing_1() {
        let src = crate::lint::tests_support::LISTING1;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let r = lint_program(src, &prog, &a);
        assert!(!r.diags.iter().any(|d| d.code == "HD008"), "{:?}", r.diags);
    }

    #[test]
    fn verifier_agrees_with_sema_on_listing_2() {
        let src = crate::lint::tests_support::LISTING2;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let r = lint_program(src, &prog, &a);
        assert!(!r.diags.iter().any(|d| d.code == "HD008"), "{:?}", r.diags);
    }

    #[test]
    fn recomputed_placements_cover_clause_paths() {
        let src = r#"
int main() {
  int k; double c[16]; double *m; char word[30]; int one;
  k = 4;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4) \
    sharedRO(k, c, m)
  while (getline(&word, 0, stdin) != -1) {
    one = (c[0] + m[0] > 0.0) + k;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let prog = parse(src).unwrap();
        let main = prog.func("main").unwrap().clone();
        let units = dataflow::collect_regions(src, &prog, &main);
        let p = recompute_placements(&units[0]);
        assert_eq!(p["k"], Placement::ConstantScalar);
        assert_eq!(p["c"], Placement::TextureArray);
        assert_eq!(p["m"], Placement::GlobalArray);
        assert_eq!(p["one"], Placement::Private);
    }

    #[test]
    fn divergence_is_reported() {
        // Force a divergence by tampering with the sema result.
        let src = crate::lint::tests_support::LISTING1;
        let prog = parse(src).unwrap();
        let mut a = analyze(&prog).unwrap();
        a.regions[0]
            .placements
            .insert("one".to_string(), Placement::ConstantScalar);
        let r = lint_program(src, &prog, &a);
        let d = r.diags.iter().find(|d| d.code == "HD008").unwrap();
        assert!(d.msg.contains("`one`"), "{}", d.msg);
    }
}
