//! `heterolint`: GPU-safety and performance static analysis over
//! `#pragma mapreduce` programs.
//!
//! Five pass families, run after [`crate::sema::analyze`]:
//!
//! 1. **Race / purity** ([`races`]): map/reduce bodies may only write
//!    privatizable locals and emit targets — writes to `sharedRO` /
//!    `texture` state (HD001), writes into the input record buffer
//!    (HD002), and mapper cross-iteration dependences found by a
//!    reaching-definitions dataflow (HD003) are reported.
//! 2. **Classification verifier** ([`classify_check`]): Algorithm 1's
//!    constant/texture/global placement is recomputed independently from
//!    def-use facts and any divergence from `sema::analyze` is HD008.
//! 3. **Clause validator** ([`clauses`]): Table 1 consistency — emit
//!    sites vs `key`/`value` clauses (HD004, HD014), `keylength` /
//!    `vallength` truncation (HD005), contradictory storage clauses
//!    (HD006, HD015), combiner reduction-operator commutativity (HD007),
//!    warp-aligned `threads` (HD013).
//! 4. **Performance lints** ([`perf`]): uncoalesced global-memory
//!    subscripts (HD009), divergent branches in inner hot loops (HD010),
//!    read-only firstprivate arrays (HD011), multi-emit mappers without a
//!    `kvpairs` hint (HD012). Each is cross-checked against
//!    `hetero-gpusim` counters by the workspace's differential tests.
//! 5. **Value analysis** ([`absint`]): a flow-sensitive abstract
//!    interpreter over interval/initialization/nullness/extent domains
//!    ([`domains`]) proves per-site safety facts. Provable faults and
//!    dead code become HD016–HD021; the [`absint::SafetyFacts`] table
//!    lets the native backend elide host-side guards at proven sites.

pub mod absint;
pub mod classify_check;
pub mod clauses;
pub mod dataflow;
pub mod diag;
pub mod domains;
pub mod perf;
pub mod races;

pub use diag::{render_diag, Diag, Severity};

use crate::ast::Program;
use crate::error::Span;
use crate::sema::Analysis;

/// How much the compile pipeline lets lint findings block compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Skip linting entirely.
    Off,
    /// Run lints; reject programs with error-severity findings.
    #[default]
    Warn,
    /// Run lints; reject on errors **and** warnings (perf-notes never
    /// block).
    Deny,
}

/// Catalogue of all stable lint codes: `(code, severity, summary)`.
/// Kept in one place so docs, the JSON report, and tests agree.
pub const CODES: &[(&str, Severity, &str)] = &[
    (
        "HD001",
        Severity::Error,
        "write to a sharedRO/texture variable inside the region",
    ),
    (
        "HD002",
        Severity::Error,
        "write into the input record buffer",
    ),
    (
        "HD003",
        Severity::Warning,
        "mapper carries a value across record iterations",
    ),
    (
        "HD004",
        Severity::Error,
        "emit site inconsistent with key/value clauses",
    ),
    (
        "HD005",
        Severity::Error,
        "keylength/vallength truncates the declared array",
    ),
    (
        "HD006",
        Severity::Error,
        "contradictory storage clauses for a variable",
    ),
    (
        "HD007",
        Severity::Warning,
        "non-commutative/associative combiner reduction",
    ),
    (
        "HD008",
        Severity::Error,
        "classification verifier disagrees with sema placement",
    ),
    (
        "HD009",
        Severity::PerfNote,
        "potentially uncoalesced global-memory access",
    ),
    (
        "HD010",
        Severity::PerfNote,
        "divergent branch in an inner hot loop",
    ),
    (
        "HD011",
        Severity::PerfNote,
        "read-only firstprivate array; prefer sharedRO/texture",
    ),
    (
        "HD012",
        Severity::PerfNote,
        "multi-emit mapper without a kvpairs hint",
    ),
    (
        "HD013",
        Severity::Warning,
        "threads clause not a multiple of the warp size",
    ),
    ("HD014", Severity::Error, "annotated region never emits"),
    (
        "HD015",
        Severity::Warning,
        "redundant/duplicate variable across storage clauses",
    ),
    (
        "HD016",
        Severity::Error,
        "subscript is provably out of bounds",
    ),
    (
        "HD017",
        Severity::Error,
        "division or remainder by a provably zero denominator",
    ),
    (
        "HD018",
        Severity::Warning,
        "scalar is read before it is ever written",
    ),
    (
        "HD019",
        Severity::Warning,
        "branch or emit is provably dead",
    ),
    (
        "HD020",
        Severity::Warning,
        "loop provably never exits and will exceed the step limit",
    ),
    (
        "HD021",
        Severity::Warning,
        "printf/scanf arguments mismatch the format",
    ),
];

/// Version of the JSON report shape emitted by [`LintReport::to_json`]
/// and the `heterolint` CLI wrapper. Bump on any key addition, removal,
/// or meaning change so CI artifact consumers can detect drift.
pub const REPORT_SCHEMA: u32 = 1;

/// Severity a code is registered with in [`CODES`].
pub fn severity_of(code: &str) -> Option<Severity> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|&(_, s, _)| s)
}

/// The full result of linting one translation unit.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order then source order.
    pub diags: Vec<Diag>,
    /// Number of annotated regions analyzed.
    pub regions: usize,
}

impl LintReport {
    /// Findings with error severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Findings with warning severity.
    pub fn warnings(&self) -> impl Iterator<Item = &Diag> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Findings with perf-note severity.
    pub fn perf_notes(&self) -> impl Iterator<Item = &Diag> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::PerfNote)
    }

    /// Count of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Count of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// Whether the program passes at the given level. Perf-notes never
    /// fail a program; `Deny` additionally fails on warnings.
    pub fn passes(&self, level: LintLevel) -> bool {
        match level {
            LintLevel::Off => true,
            LintLevel::Warn => self.error_count() == 0,
            LintLevel::Deny => self.error_count() == 0 && self.warning_count() == 0,
        }
    }

    /// One-line summaries (code, line, message) for [`crate::CcError::Lint`].
    pub fn summaries(&self, level: LintLevel) -> Vec<String> {
        self.diags
            .iter()
            .filter(|d| match level {
                LintLevel::Off => false,
                LintLevel::Warn => d.severity == Severity::Error,
                LintLevel::Deny => d.severity != Severity::PerfNote,
            })
            .map(|d| format!("{}[{}] line {}: {}", d.severity, d.code, d.span.line, d.msg))
            .collect()
    }

    /// Render every finding with a source snippet.
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&render_diag(d, src));
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON report (hand-rolled; the workspace has no
    /// full serde).
    pub fn to_json(&self, unit: &str) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"schema\":{REPORT_SCHEMA},"));
        s.push_str(&format!("\"unit\":\"{}\",", diag::json_escape(unit)));
        s.push_str(&format!("\"regions\":{},", self.regions));
        s.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"perf_notes\":{},",
            self.error_count(),
            self.warning_count(),
            self.perf_notes().count()
        ));
        s.push_str("\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Run every lint pass over an analyzed program.
///
/// `src` is the original annotated source (for spans), `program` the
/// parsed AST, and `analysis` the output of [`crate::sema::analyze`] on
/// the same program.
pub fn lint_program(src: &str, program: &Program, analysis: &Analysis) -> LintReport {
    let mut report = LintReport::default();
    let Some(main) = program.func("main") else {
        return report;
    };
    let units = dataflow::collect_regions(src, program, main);
    report.regions = units.len();
    for unit in &units {
        let region = analysis
            .regions
            .iter()
            .find(|r| r.directive_idx == unit.directive_idx);
        races::check(unit, &mut report.diags);
        clauses::check(unit, &mut report.diags);
        perf::check(unit, region, &mut report.diags);
        if let Some(region) = region {
            classify_check::check(unit, region, &mut report.diags);
        }
    }
    // Value analysis over the whole of `main` (regions included).
    for f in absint::analyze_main(program).findings {
        push(&mut report.diags, f.code, f.span, f.focus, f.msg);
    }
    // Stable order: by severity rank, then line, then code.
    report
        .diags
        .sort_by_key(|d| (d.severity.rank(), d.span.line, d.code));
    report
}

/// Append a finding unless an identical `(code, span)` diagnostic is
/// already present — overlapping passes (and the per-region loop above)
/// can legitimately rediscover the same fact, and rendered/JSON output
/// must not repeat it. Keep-first is deterministic because every pass
/// emits in program order.
pub(crate) fn push(
    diags: &mut Vec<Diag>,
    code: &'static str,
    span: Span,
    focus: Option<String>,
    msg: String,
) {
    if diags.iter().any(|d| d.code == code && d.span == span) {
        return;
    }
    let severity = severity_of(code).expect("lint code registered in CODES");
    diags.push(Diag {
        code,
        severity,
        span,
        focus,
        msg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Span;

    fn span(line: u32, start: u32, end: u32) -> Span {
        Span { line, start, end }
    }

    #[test]
    fn push_dedupes_identical_code_and_span_keeping_first() {
        let mut diags = Vec::new();
        push(
            &mut diags,
            "HD016",
            span(4, 10, 14),
            Some("a".into()),
            "first".into(),
        );
        // The same fact rediscovered by an overlapping pass: dropped,
        // and the first message survives (deterministic keep-first).
        push(&mut diags, "HD016", span(4, 10, 14), None, "second".into());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].msg, "first");
        assert_eq!(diags[0].focus.as_deref(), Some("a"));
        // A different span of the same code is not a duplicate...
        push(&mut diags, "HD016", span(5, 20, 24), None, "x".into());
        // ...nor is a different code at the same span.
        push(&mut diags, "HD017", span(4, 10, 14), None, "y".into());
        assert_eq!(diags.len(), 3);
    }

    #[test]
    fn json_report_shape_is_golden() {
        // Pins the full versioned report shape: key order, the schema
        // field, counts, and every per-diagnostic key. Any change here
        // must come with a REPORT_SCHEMA bump.
        let mut report = LintReport {
            diags: Vec::new(),
            regions: 1,
        };
        push(
            &mut report.diags,
            "HD016",
            span(6, 42, 46),
            Some("a".into()),
            "subscript is provably out of bounds".into(),
        );
        push(
            &mut report.diags,
            "HD018",
            span(3, 17, 18),
            None,
            "`x` is read before it is ever assigned".into(),
        );
        let expected = concat!(
            "{\"schema\":1,\"unit\":\"unit.c\",\"regions\":1,",
            "\"errors\":1,\"warnings\":1,\"perf_notes\":0,",
            "\"diagnostics\":[",
            "{\"code\":\"HD016\",\"severity\":\"error\",\"line\":6,",
            "\"start\":42,\"end\":46,\"focus\":\"a\",",
            "\"message\":\"subscript is provably out of bounds\"},",
            "{\"code\":\"HD018\",\"severity\":\"warning\",\"line\":3,",
            "\"start\":17,\"end\":18,\"focus\":null,",
            "\"message\":\"`x` is read before it is ever assigned\"}",
            "]}"
        );
        assert_eq!(report.to_json("unit.c"), expected);
    }

    #[test]
    fn every_absint_code_is_registered_with_its_severity() {
        for (code, sev) in [
            ("HD016", Severity::Error),
            ("HD017", Severity::Error),
            ("HD018", Severity::Warning),
            ("HD019", Severity::Warning),
            ("HD020", Severity::Warning),
            ("HD021", Severity::Warning),
        ] {
            assert_eq!(severity_of(code), Some(sev), "{code}");
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! The paper's listings, shared across lint pass tests.

    pub(crate) const LISTING1: &str = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) \
    keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;

    pub(crate) const LISTING2: &str = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) {
        count += val;
      } else {
        if(prevWord[0] != '\0')
          printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0')
      printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;
}
