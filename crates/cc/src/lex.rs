//! Lexer for the HeteroDoop C subset.
//!
//! Produces a token stream from annotated MapReduce source. `#pragma`
//! lines (including `\`-continued ones) are captured as single
//! [`Tok::Pragma`] tokens and parsed separately by [`crate::pragma`].

use crate::error::{CcError, Span};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Character literal value.
    CharLit(u8),
    /// A full `#pragma ...` line (continuations joined, `#pragma` stripped).
    Pragma(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

const PUNCTS: &[&str] = &[
    // Longest first for maximal munch.
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "%=", "->", "<<", ">>", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-",
    "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":", ".",
];

/// Tokenize `src` into a vector of tokens ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, CcError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= b.len() {
                return Err(CcError::lex(line, "unterminated block comment"));
            }
            i += 2;
            continue;
        }
        // Preprocessor lines: capture pragmas, skip includes/defines.
        if c == b'#' {
            let start_line = line;
            let start_byte = i;
            let mut text = String::new();
            // Collect the logical line, honouring trailing-backslash
            // continuations (the paper's Listing 1 uses `\\`).
            loop {
                let eol = b[i..]
                    .iter()
                    .position(|&x| x == b'\n')
                    .map(|p| i + p)
                    .unwrap_or(b.len());
                let mut seg = std::str::from_utf8(&b[i..eol])
                    .map_err(|_| CcError::lex(line, "non-utf8 source"))?
                    .trim_end()
                    .to_string();
                let cont = seg.ends_with('\\');
                if cont {
                    while seg.ends_with('\\') {
                        seg.pop();
                    }
                }
                text.push_str(&seg);
                text.push(' ');
                i = (eol + 1).min(b.len());
                line += 1;
                if !cont || i >= b.len() {
                    break;
                }
            }
            let text = text.trim();
            if let Some(rest) = text.strip_prefix("#pragma") {
                toks.push(Token {
                    tok: Tok::Pragma(rest.trim().to_string()),
                    span: Span::new(start_line, start_byte, i.saturating_sub(1).max(start_byte)),
                });
            }
            // #include / #define are ignored (stdlib is built in).
            continue;
        }
        // String literal.
        if c == b'"' {
            let start_line = line;
            let start_byte = i;
            let mut s = String::new();
            i += 1;
            loop {
                if i >= b.len() {
                    return Err(CcError::lex(start_line, "unterminated string literal"));
                }
                match b[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        if i >= b.len() {
                            return Err(CcError::lex(start_line, "bad escape"));
                        }
                        s.push(unescape(b[i]));
                        i += 1;
                    }
                    b'\n' => return Err(CcError::lex(start_line, "newline in string literal")),
                    x => {
                        s.push(x as char);
                        i += 1;
                    }
                }
            }
            toks.push(Token {
                tok: Tok::StrLit(s),
                span: Span::new(start_line, start_byte, i),
            });
            continue;
        }
        // Char literal.
        if c == b'\'' {
            let start_line = line;
            let start_byte = i;
            i += 1;
            if i >= b.len() {
                return Err(CcError::lex(start_line, "unterminated char literal"));
            }
            let v = if b[i] == b'\\' {
                i += 1;
                if i >= b.len() {
                    return Err(CcError::lex(start_line, "bad char escape"));
                }
                let v = unescape(b[i]) as u8;
                i += 1;
                v
            } else {
                let v = b[i];
                i += 1;
                v
            };
            if i >= b.len() || b[i] != b'\'' {
                return Err(CcError::lex(start_line, "unterminated char literal"));
            }
            i += 1;
            toks.push(Token {
                tok: Tok::CharLit(v),
                span: Span::new(start_line, start_byte, i),
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_float = false;
            while i < b.len()
                && (b[i].is_ascii_digit()
                    || b[i] == b'.'
                    || b[i] == b'e'
                    || b[i] == b'E'
                    || ((b[i] == b'+' || b[i] == b'-')
                        && i > start
                        && (b[i - 1] == b'e' || b[i - 1] == b'E')))
            {
                if b[i] == b'.' || b[i] == b'e' || b[i] == b'E' {
                    is_float = true;
                }
                i += 1;
            }
            // Suffixes (f, L, u...) are accepted and ignored.
            while i < b.len() && matches!(b[i], b'f' | b'F' | b'l' | b'L' | b'u' | b'U') {
                if matches!(b[i], b'f' | b'F') {
                    is_float = true;
                }
                i += 1;
            }
            let text = std::str::from_utf8(&b[start..i]).unwrap();
            let text = text.trim_end_matches(|ch: char| ch.is_ascii_alphabetic());
            let tok = if is_float {
                Tok::FloatLit(
                    text.parse::<f64>()
                        .map_err(|_| CcError::lex(line, format!("bad float literal {text}")))?,
                )
            } else {
                Tok::IntLit(
                    text.parse::<i64>()
                        .map_err(|_| CcError::lex(line, format!("bad int literal {text}")))?,
                )
            };
            toks.push(Token {
                tok,
                span: Span::new(line, start, i),
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Token {
                tok: Tok::Ident(std::str::from_utf8(&b[start..i]).unwrap().to_string()),
                span: Span::new(line, start, i),
            });
            continue;
        }
        // Punctuation.
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            toks.push(Token {
                tok: Tok::Punct(p),
                span: Span::new(line, i, i + p.len()),
            });
            i += p.len();
            continue;
        }
        return Err(CcError::lex(
            line,
            format!("unexpected character {:?}", c as char),
        ));
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(line, b.len(), b.len()),
    });
    Ok(toks)
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        x => x as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = kinds("int x = 42;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::IntLit(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pragma_with_continuation() {
        let t = kinds("#pragma mapreduce mapper key(word) \\\n value(one)\nint x;");
        match &t[0] {
            Tok::Pragma(p) => {
                assert!(p.contains("mapper"));
                assert!(p.contains("value(one)"));
            }
            other => panic!("expected pragma, got {other:?}"),
        }
        assert_eq!(t[1], Tok::Ident("int".into()));
    }

    #[test]
    fn string_and_char_literals() {
        let t = kinds(r#"printf("%s\t%d\n", word, one); char c = 'a'; char nl = '\n';"#);
        assert!(t.contains(&Tok::StrLit("%s\t%d\n".into())));
        assert!(t.contains(&Tok::CharLit(b'a')));
        assert!(t.contains(&Tok::CharLit(b'\n')));
    }

    #[test]
    fn float_literals() {
        let t = kinds("double d = 3.25; float f = 1e-3; float g = 2.5f;");
        assert!(t.contains(&Tok::FloatLit(3.25)));
        assert!(t.contains(&Tok::FloatLit(1e-3)));
        assert!(t.contains(&Tok::FloatLit(2.5)));
    }

    #[test]
    fn comments_ignored() {
        let t = kinds("int a; // comment\n/* multi\nline */ int b;");
        assert_eq!(t.len(), 7); // int a ; int b ; EOF
    }

    #[test]
    fn includes_skipped() {
        let t = kinds("#include <stdio.h>\nint main() { return 0; }");
        assert_eq!(t[0], Tok::Ident("int".into()));
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("a <= b == c && d++ += e;");
        assert!(t.contains(&Tok::Punct("<=")));
        assert!(t.contains(&Tok::Punct("==")));
        assert!(t.contains(&Tok::Punct("&&")));
        assert!(t.contains(&Tok::Punct("++")));
        assert!(t.contains(&Tok::Punct("+=")));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("char *s = \"oops").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("int a;\nint b;\n\nint c;").unwrap();
        let c = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("c".into()))
            .unwrap();
        assert_eq!(c.span.line, 4);
    }

    #[test]
    fn byte_spans_are_accurate() {
        let src = "int abc = 42;\nchar *s = \"hi\";";
        let toks = lex(src).unwrap();
        let slice = |sp: Span| &src[sp.start as usize..sp.end as usize];
        let abc = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("abc".into()))
            .unwrap();
        assert_eq!(slice(abc.span), "abc");
        let lit = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::IntLit(42)))
            .unwrap();
        assert_eq!(slice(lit.span), "42");
        let s = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::StrLit(_)))
            .unwrap();
        assert_eq!(slice(s.span), "\"hi\"");
        assert_eq!(s.span.line, 2);
    }

    #[test]
    fn paper_listing_1_lexes() {
        let src = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) \
    keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;
        let toks = lex(src).unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Pragma(p) if p.contains("keylength"))));
        assert!(toks.len() > 50);
    }
}
