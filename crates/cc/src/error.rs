//! Diagnostics for the HeteroDoop compiler.

use std::fmt;

/// Source location: a 1-based line plus a byte range into the original
/// source text. Lint diagnostics use the byte range to underline the
/// offending tokens; line-only spans (`start == end == 0` via
/// [`From<u32>`]) remain valid and degrade to whole-line reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// Byte offset of the first byte (inclusive) in the source.
    pub start: u32,
    /// Byte offset one past the last byte (exclusive) in the source.
    pub end: u32,
}

impl Span {
    /// Span covering bytes `start..end` on `line`.
    pub fn new(line: u32, start: usize, end: usize) -> Self {
        Span {
            line,
            start: start as u32,
            end: end as u32,
        }
    }

    /// True when the span carries a real byte range.
    pub fn has_bytes(self) -> bool {
        self.end > self.start
    }

    /// Smallest span covering both `self` and `other` (line of `self`).
    pub fn merge(self, other: Span) -> Span {
        if !self.has_bytes() {
            return if other.has_bytes() { other } else { self };
        }
        if !other.has_bytes() {
            return self;
        }
        Span {
            line: self.line.min(other.line).max(1),
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl From<u32> for Span {
    fn from(line: u32) -> Self {
        Span {
            line,
            start: 0,
            end: 0,
        }
    }
}

/// Compiler errors, each tagged with the phase that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum CcError {
    /// Lexical error.
    Lex {
        /// Source location.
        span: Span,
        /// Message.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Source location.
        span: Span,
        /// Message.
        msg: String,
    },
    /// Directive (pragma) error — unknown clause, missing argument,
    /// clause on the wrong directive kind, etc.
    Directive {
        /// Source location.
        span: Span,
        /// Message.
        msg: String,
    },
    /// Semantic error — unknown variable in a clause, no annotated loop...
    Sema {
        /// Source location.
        span: Span,
        /// Message.
        msg: String,
    },
    /// Lint errors from [`crate::lint`]; the program was rejected by
    /// static analysis. Messages are pre-rendered one-line diagnostics.
    Lint {
        /// One line per offending diagnostic (`HDxxx` code + location).
        reports: Vec<String>,
    },
    /// Runtime error in the interpreter.
    Interp(String),
}

impl CcError {
    pub(crate) fn lex(span: impl Into<Span>, msg: impl Into<String>) -> Self {
        CcError::Lex {
            span: span.into(),
            msg: msg.into(),
        }
    }
    pub(crate) fn parse(span: impl Into<Span>, msg: impl Into<String>) -> Self {
        CcError::Parse {
            span: span.into(),
            msg: msg.into(),
        }
    }
    pub(crate) fn directive(span: impl Into<Span>, msg: impl Into<String>) -> Self {
        CcError::Directive {
            span: span.into(),
            msg: msg.into(),
        }
    }
    pub(crate) fn sema(span: impl Into<Span>, msg: impl Into<String>) -> Self {
        CcError::Sema {
            span: span.into(),
            msg: msg.into(),
        }
    }
    pub(crate) fn interp(msg: impl Into<String>) -> Self {
        CcError::Interp(msg.into())
    }

    /// The source location of this error, when it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            CcError::Lex { span, .. }
            | CcError::Parse { span, .. }
            | CcError::Directive { span, .. }
            | CcError::Sema { span, .. } => Some(*span),
            CcError::Lint { .. } | CcError::Interp(_) => None,
        }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Lex { span, msg } => write!(f, "lex error (line {}): {msg}", span.line),
            CcError::Parse { span, msg } => write!(f, "parse error (line {}): {msg}", span.line),
            CcError::Directive { span, msg } => {
                write!(f, "directive error (line {}): {msg}", span.line)
            }
            CcError::Sema { span, msg } => write!(f, "semantic error (line {}): {msg}", span.line),
            CcError::Lint { reports } => {
                write!(f, "lint rejected program ({} finding(s))", reports.len())?;
                for r in reports {
                    write!(f, "\n  {r}")?;
                }
                Ok(())
            }
            CcError::Interp(msg) => write!(f, "interpreter error: {msg}"),
        }
    }
}

impl std::error::Error for CcError {}

/// Non-fatal diagnostics, e.g. the paper's warning when privatization
/// analysis is inexact due to aliasing (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// Source location.
    pub span: Span,
    /// Message.
    pub msg: String,
}

impl Warning {
    pub(crate) fn new(span: impl Into<Span>, msg: impl Into<String>) -> Self {
        Warning {
            span: span.into(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning (line {}): {}", self.span.line, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_from_line_has_no_bytes() {
        let s: Span = 7u32.into();
        assert_eq!(s.line, 7);
        assert!(!s.has_bytes());
    }

    #[test]
    fn span_merge_prefers_byte_ranges() {
        let a = Span::new(3, 10, 14);
        let b = Span::new(3, 20, 25);
        let m = a.merge(b);
        assert_eq!((m.start, m.end), (10, 25));
        let lineonly: Span = 5u32.into();
        assert_eq!(a.merge(lineonly), a);
        assert_eq!(lineonly.merge(a), a);
    }

    #[test]
    fn lint_error_display_lists_reports() {
        let e = CcError::Lint {
            reports: vec!["HD001 ...".into()],
        };
        let s = e.to_string();
        assert!(s.contains("1 finding(s)"));
        assert!(s.contains("HD001"));
    }
}
