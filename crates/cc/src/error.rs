//! Diagnostics for the HeteroDoop compiler.

use std::fmt;

/// Source location (line-granular; enough for directive diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
}

/// Compiler errors, each tagged with the phase that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum CcError {
    /// Lexical error.
    Lex {
        /// Source line.
        line: u32,
        /// Message.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Source line.
        line: u32,
        /// Message.
        msg: String,
    },
    /// Directive (pragma) error — unknown clause, missing argument,
    /// clause on the wrong directive kind, etc.
    Directive {
        /// Source line.
        line: u32,
        /// Message.
        msg: String,
    },
    /// Semantic error — unknown variable in a clause, no annotated loop...
    Sema {
        /// Source line.
        line: u32,
        /// Message.
        msg: String,
    },
    /// Runtime error in the interpreter.
    Interp(String),
}

impl CcError {
    pub(crate) fn lex(line: u32, msg: impl Into<String>) -> Self {
        CcError::Lex {
            line,
            msg: msg.into(),
        }
    }
    pub(crate) fn parse(line: u32, msg: impl Into<String>) -> Self {
        CcError::Parse {
            line,
            msg: msg.into(),
        }
    }
    pub(crate) fn directive(line: u32, msg: impl Into<String>) -> Self {
        CcError::Directive {
            line,
            msg: msg.into(),
        }
    }
    pub(crate) fn sema(line: u32, msg: impl Into<String>) -> Self {
        CcError::Sema {
            line,
            msg: msg.into(),
        }
    }
    pub(crate) fn interp(msg: impl Into<String>) -> Self {
        CcError::Interp(msg.into())
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Lex { line, msg } => write!(f, "lex error (line {line}): {msg}"),
            CcError::Parse { line, msg } => write!(f, "parse error (line {line}): {msg}"),
            CcError::Directive { line, msg } => write!(f, "directive error (line {line}): {msg}"),
            CcError::Sema { line, msg } => write!(f, "semantic error (line {line}): {msg}"),
            CcError::Interp(msg) => write!(f, "interpreter error: {msg}"),
        }
    }
}

impl std::error::Error for CcError {}

/// Non-fatal diagnostics, e.g. the paper's warning when privatization
/// analysis is inexact due to aliasing (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// Source line.
    pub line: u32,
    /// Message.
    pub msg: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning (line {}): {}", self.line, self.msg)
    }
}
