//! Semantic analysis of annotated regions: Algorithm 1 of the paper.
//!
//! For each `#pragma mapreduce` region this pass
//!
//! 1. collects the variables used inside the region,
//! 2. classifies each one — shared read-only scalar (→ constant memory),
//!    shared read-only array (→ texture or global memory), private, or
//!    firstprivate (with automatic inference when the clause is absent),
//! 3. validates the directive's variable references against the symbol
//!    table, and
//! 4. emits the paper's aliasing warning when privatization inference may
//!    be inaccurate (§3.2).

use crate::ast::*;
use crate::error::{CcError, Warning};
use crate::lint::absint::SafetyFacts;
use crate::pragma::{Directive, DirectiveKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where a variable is placed in the generated kernel (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Shared read-only scalar passed as a kernel argument — the CUDA
    /// compiler places it in constant memory (Algo 1 lines 5–6).
    ConstantScalar,
    /// Shared read-only array bound to the texture memory (lines 11–15).
    TextureArray,
    /// Shared read-only array in global memory via a device pointer
    /// (lines 8–9).
    GlobalArray,
    /// Private per-thread variable (lines 17 ff.).
    Private,
    /// Firstprivate scalar: initial value passed by kernel parameter.
    FirstPrivateScalar,
    /// Firstprivate array: staged through global memory and copied into
    /// the private space by each thread (lines 20–23).
    FirstPrivateArray,
}

/// One analyzed `#pragma mapreduce` region.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Index into `Program::directives`.
    pub directive_idx: usize,
    /// Directive kind (mapper/combiner).
    pub kind: DirectiveKind,
    /// Placement decision for every outer variable used in the region.
    pub placements: BTreeMap<String, Placement>,
    /// Types of all variables visible to the region (outer + params).
    pub types: BTreeMap<String, CType>,
    /// Resolved emitted-key length in bytes.
    pub key_length: usize,
    /// Resolved emitted-value length in bytes.
    pub val_length: usize,
    /// Whether the emitted key is an array (drives vectorization).
    pub key_is_array: bool,
    /// Whether the emitted value is an array.
    pub val_is_array: bool,
    /// Non-fatal diagnostics.
    pub warnings: Vec<Warning>,
}

/// Full analysis result for a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// One entry per mapreduce directive, in directive order.
    pub regions: Vec<RegionInfo>,
    /// Per-site safety proofs from the value analysis
    /// ([`crate::lint::absint`]); the native backend consumes these via
    /// [`crate::backend::native::NativeProgram::compile_with_facts`] to
    /// elide host-side guards. Keyed by AST node identity — valid for
    /// the exact `Program` analyzed (and moves of it), not for clones;
    /// [`SafetyFacts::matches`] detects staleness.
    pub safety: SafetyFacts,
}

/// Analyze every annotated region in `prog`.
pub fn analyze(prog: &Program) -> Result<Analysis, CcError> {
    let main = prog
        .func("main")
        .ok_or_else(|| CcError::sema(0u32, "program has no main function"))?;

    // Symbol table of main's declarations (the paper's regions only see
    // main-level variables).
    let mut types: BTreeMap<String, CType> = BTreeMap::new();
    walk_stmts(&main.body, &mut |s| {
        if let StmtKind::Decl(ds) = &s.kind {
            for d in ds {
                types.insert(d.name.clone(), d.ty.clone());
            }
        }
    });

    let mut regions = Vec::new();
    for (idx, dir) in prog.directives.iter().enumerate() {
        let region = find_region(&main.body, idx)
            .ok_or_else(|| CcError::sema(dir.span, "directive is not attached to a statement"))?;
        regions.push(analyze_region(dir, idx, region, &types)?);
    }
    Ok(Analysis {
        regions,
        safety: SafetyFacts::for_program(prog),
    })
}

fn find_region(stmts: &[Stmt], idx: usize) -> Option<&Stmt> {
    let mut found = None;
    walk_stmts(stmts, &mut |s| {
        if let StmtKind::Annotated(i, inner) = &s.kind {
            if *i == idx {
                found = Some(inner.as_ref());
            }
        }
    });
    found
}

fn analyze_region(
    dir: &Directive,
    idx: usize,
    region: &Stmt,
    outer_types: &BTreeMap<String, CType>,
) -> Result<RegionInfo, CcError> {
    let line = dir.span;
    let mut warnings = Vec::new();

    // The mapper/combiner region must contain the record loop.
    let mut has_while = false;
    let tmp = [region.clone()];
    walk_stmts(&tmp, &mut |s| {
        if matches!(s.kind, StmtKind::While { .. }) {
            has_while = true;
        }
    });
    if !has_while {
        return Err(CcError::sema(
            line,
            "annotated region contains no while loop over records",
        ));
    }

    // Variables declared inside the region shadow outer ones and are
    // private by construction.
    let mut inner_decls: BTreeSet<String> = BTreeSet::new();
    walk_stmts(&tmp, &mut |s| {
        if let StmtKind::Decl(ds) = &s.kind {
            for d in ds {
                inner_decls.insert(d.name.clone());
            }
        }
    });

    // Used variables (Algo 1: getUsedVars), collected in execution order
    // so read-before-write is exact: a `for` loop visits init before
    // cond/step, and compound assignments (`x += v`) read their target.
    let mut usage = Usage::default();
    usage.visit_stmt(&tmp[0], outer_types);
    let Usage {
        mut used,
        written,
        read_before_write,
        alias_risk,
    } = usage;
    used.retain(|v| outer_types.contains_key(v) && !inner_decls.contains(v));

    // Validate directive variable references.
    let check_var = |name: &str| -> Result<(), CcError> {
        if !outer_types.contains_key(name) && !inner_decls.contains(name) {
            return Err(CcError::sema(
                line,
                format!("clause references unknown variable '{name}'"),
            ));
        }
        Ok(())
    };
    check_var(&dir.key)?;
    check_var(&dir.value)?;
    if let Some(k) = &dir.keyin {
        check_var(k)?;
    }
    if let Some(v) = &dir.valuein {
        check_var(v)?;
    }
    for v in dir
        .firstprivate
        .iter()
        .chain(dir.shared_ro.iter())
        .chain(dir.texture.iter())
    {
        check_var(v)?;
    }

    // Resolve emitted key/value lengths: clause wins, otherwise derive
    // from the variable's type (paper §3.1: keylength/vallength are needed
    // when the type is not compiler-derivable).
    let key_ty = lookup_ty(&dir.key, outer_types);
    let val_ty = lookup_ty(&dir.value, outer_types);
    let derive_len =
        |ty: Option<&CType>, clause: Option<usize>, what: &str| -> Result<usize, CcError> {
            if let Some(n) = clause {
                return Ok(n);
            }
            match ty {
                Some(CType::Array(el, Some(n))) => Ok(el.scalar_size() * n),
                Some(t) if t.is_scalar() => Ok(t.scalar_size()),
                _ => Err(CcError::sema(
                    line,
                    format!("{what} length is not compiler-derivable; add the {what}length clause"),
                )),
            }
        };
    let key_length = derive_len(key_ty, dir.keylength, "key")?;
    let val_length = derive_len(val_ty, dir.vallength, "val")?;
    let key_is_array = key_ty
        .map(|t| t.is_array() || matches!(t, CType::Ptr(_)))
        .unwrap_or(false);
    let val_is_array = val_ty
        .map(|t| t.is_array() || matches!(t, CType::Ptr(_)))
        .unwrap_or(false);

    if alias_risk {
        warnings.push(Warning::new(
            line,
            "privatization analysis may be inaccurate due to pointer aliasing; \
             consider an explicit firstprivate clause",
        ));
    }

    // Classification (Algorithm 1).
    let shared_ro: BTreeSet<&String> = dir.shared_ro.iter().collect();
    let texture: BTreeSet<&String> = dir.texture.iter().collect();
    let mut firstprivate: BTreeSet<String> = dir.firstprivate.iter().cloned().collect();
    // Automatic inference: an outer variable written in the region whose
    // value is (possibly) read before the first write needs its initial
    // value — firstprivate. Read-only non-sharedRO variables also keep
    // their initial value.
    for v in &used {
        if firstprivate.contains(v) || shared_ro.contains(v) || texture.contains(v) {
            continue;
        }
        let w = written.contains(v);
        let rbw = read_before_write.contains(v);
        if (!w && !is_stream_handle(v)) || (w && rbw) {
            firstprivate.insert(v.clone());
        }
    }

    let mut placements = BTreeMap::new();
    for v in &used {
        let ty = lookup_ty(v, outer_types);
        let is_arr = ty
            .map(|t| t.is_array() || matches!(t, CType::Ptr(_)))
            .unwrap_or(false);
        let p = if texture.contains(v) {
            Placement::TextureArray
        } else if shared_ro.contains(v) {
            if is_arr {
                // Arrays with compile-time size default to texture (paper
                // §3.2); unknown-size arrays go to global memory.
                match ty {
                    Some(CType::Array(_, Some(_))) => Placement::TextureArray,
                    _ => Placement::GlobalArray,
                }
            } else {
                Placement::ConstantScalar
            }
        } else if firstprivate.contains(v) {
            if is_arr {
                Placement::FirstPrivateArray
            } else {
                Placement::FirstPrivateScalar
            }
        } else {
            Placement::Private
        };
        placements.insert(v.clone(), p);
    }

    let mut types = outer_types.clone();
    types.retain(|k, _| used.contains(k) || inner_decls.contains(k));

    Ok(RegionInfo {
        directive_idx: idx,
        kind: dir.kind,
        placements,
        types,
        key_length,
        val_length,
        key_is_array,
        val_is_array,
        warnings,
    })
}

fn lookup_ty<'a>(name: &str, t: &'a BTreeMap<String, CType>) -> Option<&'a CType> {
    t.get(name)
}

/// `stdin`/`stdout` pseudo-handles are replaced by the runtime, never
/// privatized.
pub(crate) fn is_stream_handle(name: &str) -> bool {
    matches!(name, "stdin" | "stdout" | "stderr")
}

/// Execution-ordered def/use collector for a region (Algorithm 1's
/// getUsedVars plus read-before-write tracking for firstprivate
/// inference).
#[derive(Debug, Default, Clone)]
pub(crate) struct Usage {
    /// All outer variables referenced in the region.
    pub(crate) used: BTreeSet<String>,
    /// Variables written (directly, via `&x`, or by a writing builtin).
    pub(crate) written: BTreeSet<String>,
    /// Variables whose value may be read before the region's first write.
    pub(crate) read_before_write: BTreeSet<String>,
    /// Pointer-to-pointer assignment seen (paper §3.2 aliasing warning).
    pub(crate) alias_risk: bool,
}

impl Usage {
    fn read(&mut self, n: &str) {
        self.used.insert(n.to_string());
        if !self.written.contains(n) {
            self.read_before_write.insert(n.to_string());
        }
    }

    fn write(&mut self, n: &str) {
        self.used.insert(n.to_string());
        self.written.insert(n.to_string());
    }

    pub(crate) fn visit_stmt(&mut self, s: &Stmt, tys: &BTreeMap<String, CType>) {
        match &s.kind {
            StmtKind::Decl(ds) => {
                for d in ds {
                    if let Some(i) = &d.init {
                        self.visit_expr(i, tys);
                    }
                }
            }
            StmtKind::Expr(e) => self.visit_expr(e, tys),
            StmtKind::While { cond, body } => {
                self.visit_expr(cond, tys);
                self.visit_stmt(body, tys);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // Execution order: init runs before cond is first read.
                if let Some(i) = init {
                    self.visit_stmt(i, tys);
                }
                if let Some(c) = cond {
                    self.visit_expr(c, tys);
                }
                self.visit_stmt(body, tys);
                if let Some(st) = step {
                    self.visit_expr(st, tys);
                }
            }
            StmtKind::If { cond, then, els } => {
                self.visit_expr(cond, tys);
                self.visit_stmt(then, tys);
                if let Some(e) = els {
                    self.visit_stmt(e, tys);
                }
            }
            StmtKind::Return(Some(e)) => self.visit_expr(e, tys),
            StmtKind::Block(v) => {
                for st in v {
                    self.visit_stmt(st, tys);
                }
            }
            StmtKind::Annotated(_, inner) => self.visit_stmt(inner, tys),
            _ => {}
        }
    }

    fn visit_expr(&mut self, e: &Expr, tys: &BTreeMap<String, CType>) {
        match e {
            Expr::Ident(n) => self.read(n),
            Expr::Assign(op, lhs, rhs) => {
                self.visit_expr(rhs, tys);
                // Subscripts on the lhs are reads (`a[i] = ...` reads i).
                self.visit_lhs_subscripts(lhs, tys);
                if let Some(n) = root_ident(lhs) {
                    // Compound assignment reads the target first.
                    if *op != AssignOp::None {
                        self.read(n);
                    }
                    let n = n.to_string();
                    self.write(&n);
                    // Pointer-to-pointer assignment inside the region
                    // defeats the privatization analysis (§3.2 warning).
                    if matches!(tys.get(&n), Some(CType::Ptr(_)))
                        && matches!(lhs.as_ref(), Expr::Ident(_))
                    {
                        self.alias_risk = true;
                    }
                }
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                // Address-taken variables are written through the pointer
                // (getline(&line...), scanf(..., &val)).
                self.visit_lhs_subscripts(inner, tys);
                if let Some(n) = root_ident(inner) {
                    let n = n.to_string();
                    self.write(&n);
                }
            }
            Expr::PostInc(x) | Expr::PostDec(x) | Expr::Unary(UnOp::PreInc | UnOp::PreDec, x) => {
                self.visit_lhs_subscripts(x, tys);
                if let Some(n) = root_ident(x) {
                    self.read(n);
                    let n = n.to_string();
                    self.write(&n);
                }
            }
            Expr::Call(name, args) => {
                // Builtins that write through specific arguments.
                let write_args = builtin_write_args(name);
                for (i, a) in args.iter().enumerate() {
                    if write_args.contains(&i) {
                        self.visit_lhs_subscripts(a, tys);
                        if let Some(n) = a_root(a) {
                            self.write(&n);
                        } else {
                            self.visit_expr(a, tys);
                        }
                    } else {
                        self.visit_expr(a, tys);
                    }
                }
            }
            Expr::Unary(_, x) | Expr::Cast(_, x) => self.visit_expr(x, tys),
            Expr::Binary(_, a, b) => {
                self.visit_expr(a, tys);
                self.visit_expr(b, tys);
            }
            Expr::Index(a, b) => {
                self.visit_expr(a, tys);
                self.visit_expr(b, tys);
            }
            Expr::Cond(c, t, x) => {
                self.visit_expr(c, tys);
                self.visit_expr(t, tys);
                self.visit_expr(x, tys);
            }
            _ => {}
        }
    }

    /// Visit the index expressions of an lvalue (they are reads) without
    /// treating the root identifier as a read.
    fn visit_lhs_subscripts(&mut self, e: &Expr, tys: &BTreeMap<String, CType>) {
        match e {
            Expr::Index(b, i) => {
                self.visit_expr(i, tys);
                self.visit_lhs_subscripts(b, tys);
            }
            Expr::Unary(UnOp::Deref, x) | Expr::Cast(_, x) => self.visit_lhs_subscripts(x, tys),
            _ => {}
        }
    }
}

fn a_root(e: &Expr) -> Option<String> {
    // `&x` write-arguments are handled by the AddrOf arm; here we accept
    // both `word` and `&val` shapes.
    match e {
        Expr::Unary(UnOp::AddrOf, inner) => root_ident(inner).map(|s| s.to_string()),
        _ => root_ident(e).map(|s| s.to_string()),
    }
}

/// Argument indices a known builtin writes through.
pub(crate) fn builtin_write_args(name: &str) -> &'static [usize] {
    match name {
        "strcpy" | "strncpy" | "strcat" => &[0],
        "getWord" | "getTok" => &[2], // (line, off, word, read, max)
        "getline" => &[0],            // (&line, &nbytes, stdin)
        "scanf" => &[1, 2, 3],        // all conversion targets
        _ => &[],
    }
}

fn root_ident(e: &Expr) -> Option<&str> {
    match e {
        Expr::Ident(n) => Some(n),
        Expr::Index(b, _) => root_ident(b),
        Expr::Unary(UnOp::Deref, x) => root_ident(x),
        Expr::Cast(_, x) => root_ident(x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const WC_MAP: &str = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;

    #[test]
    fn wordcount_map_region_analyzed() {
        let prog = parse(WC_MAP).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions.len(), 1);
        let r = &a.regions[0];
        assert_eq!(r.kind, DirectiveKind::Mapper);
        assert_eq!(r.key_length, 30);
        assert_eq!(r.val_length, 1);
        assert!(r.key_is_array);
        assert!(!r.val_is_array);
        // word/line/read/linePtr/offset/one are all written fresh each
        // iteration -> private.
        assert_eq!(r.placements["word"], Placement::Private);
        assert_eq!(r.placements["one"], Placement::Private);
        assert_eq!(r.placements["offset"], Placement::Private);
    }

    #[test]
    fn lengths_derived_from_types_when_clause_absent() {
        let src = r#"
int main() {
  char word[24]; int one;
  #pragma mapreduce mapper key(word) value(one)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions[0].key_length, 24);
        assert_eq!(a.regions[0].val_length, 4);
    }

    #[test]
    fn underivable_length_requires_clause() {
        let src = r#"
int main() {
  char *key; int one;
  #pragma mapreduce mapper key(key) value(one)
  while (getline(&key, 0, stdin) != -1) { one = 1; }
}
"#;
        let prog = parse(src).unwrap();
        assert!(matches!(analyze(&prog), Err(CcError::Sema { .. })));
    }

    #[test]
    fn shared_ro_scalar_goes_to_constant_memory() {
        let src = r#"
int main() {
  int k; double thr; char word[30]; int one;
  k = 4; thr = 0.5;
  #pragma mapreduce mapper key(word) value(one) sharedRO(k, thr)
  while (getline(&word, 0, stdin) != -1) { one = k; printf("%s\t%d\n", word, one); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions[0].placements["k"], Placement::ConstantScalar);
    }

    #[test]
    fn shared_ro_sized_array_defaults_to_texture() {
        let src = r#"
int main() {
  double centroids[64]; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) sharedRO(centroids)
  while (getline(&word, 0, stdin) != -1) { one = centroids[0] > 0.0; printf("x\t1\n"); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(
            a.regions[0].placements["centroids"],
            Placement::TextureArray
        );
    }

    #[test]
    fn shared_ro_unsized_array_goes_global() {
        let src = r#"
int main() {
  double *model; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) sharedRO(model)
  while (getline(&word, 0, stdin) != -1) { one = model[0] > 0.0; printf("x\t1\n"); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions[0].placements["model"], Placement::GlobalArray);
    }

    #[test]
    fn texture_clause_forces_texture() {
        let src = r#"
int main() {
  double *model; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) texture(model)
  while (getline(&word, 0, stdin) != -1) { one = model[0] > 0.0; printf("x\t1\n"); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions[0].placements["model"], Placement::TextureArray);
    }

    #[test]
    fn explicit_firstprivate_honoured_listing_2() {
        let src = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) \
    keylength(30) vallength(1) firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) { count += val; }
      else {
        if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let r = &a.regions[0];
        assert_eq!(r.kind, DirectiveKind::Combiner);
        assert_eq!(r.placements["prevWord"], Placement::FirstPrivateArray);
        assert_eq!(r.placements["count"], Placement::FirstPrivateScalar);
        assert_eq!(r.placements["val"], Placement::Private);
    }

    #[test]
    fn firstprivate_inferred_for_read_before_write() {
        let src = r#"
int main() {
  char word[30]; int one; int total; total = 5;
  #pragma mapreduce mapper key(word) value(one)
  while (getline(&word, 0, stdin) != -1) {
    one = total;    // reads total before any write
    total = one + 1;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(
            a.regions[0].placements["total"],
            Placement::FirstPrivateScalar
        );
    }

    #[test]
    fn for_loop_index_written_in_init_is_private() {
        // Regression: the old pre-order walk visited a `for` statement's
        // cond/step before its init, so `c` looked read-before-write and
        // was misclassified FirstPrivateScalar.
        let src = r#"
int main() {
  char word[30]; int one; int c; double s;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) {
    s = 0.0;
    for (c = 0; c < 8; c++) { s = s + c; }
    one = s > 0.0;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.regions[0].placements["c"], Placement::Private);
        assert_eq!(a.regions[0].placements["s"], Placement::Private);
    }

    #[test]
    fn compound_assign_counts_as_read() {
        // Regression: `total += one` reads `total` before writing it, so
        // the region needs its initial value (firstprivate), even though
        // the old collector only recorded the write.
        let src = r#"
int main() {
  char word[30]; int one; int total; total = 0;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&word, 0, stdin) != -1) {
    one = 1;
    total += one;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(
            a.regions[0].placements["total"],
            Placement::FirstPrivateScalar
        );
    }

    #[test]
    fn alias_warning_emitted() {
        let src = r#"
int main() {
  char *line; char *alias; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(4)
  while (getline(&line, 0, stdin) != -1) {
    alias = line;   // pointer aliasing inside the region
    one = 1;
    printf("%s\t%d\n", word, one);
  }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        assert!(!a.regions[0].warnings.is_empty());
        assert!(a.regions[0].warnings[0].msg.contains("aliasing"));
    }

    #[test]
    fn unknown_clause_variable_rejected() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) sharedRO(ghost)
  while (getline(&word, 0, stdin) != -1) { one = 1; }
}
"#;
        let prog = parse(src).unwrap();
        assert!(matches!(analyze(&prog), Err(CcError::Sema { .. })));
    }

    #[test]
    fn region_without_while_rejected() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one)
  { one = 1; }
}
"#;
        let prog = parse(src).unwrap();
        assert!(matches!(analyze(&prog), Err(CcError::Sema { .. })));
    }
}
