//! # hetero-cc
//!
//! The HeteroDoop directive compiler: a source-to-source translator for
//! sequential C MapReduce programs annotated with `#pragma mapreduce`
//! directives (paper §3–§4), plus an interpreter so the *same* annotated
//! source executes on the simulated CPU and GPU paths.
//!
//! Pipeline: [`parse::parse`] → [`sema::analyze`] (Algorithm 1 variable
//! classification, privatization inference, alias warnings) →
//! [`translate::translate`] (kernel extraction, I/O call replacement,
//! vectorization and shared-memory decisions) → [`codegen`] (CUDA-like
//! text, host driver of Fig. 1). [`interp`] runs programs functionally
//! under Hadoop-Streaming-style I/O while counting abstract operations
//! for the cost models.
//!
//! The full Table 1 clause set is supported: `mapper`, `combiner`, `key`,
//! `value`, `keyin`, `valuein`, `keylength`, `vallength`, `firstprivate`,
//! `sharedRO`, `texture`, `kvpairs`, `blocks`, `threads`.

#![warn(missing_docs)]

pub mod ast;
pub mod backend;
pub mod codegen;
pub mod error;
pub mod interp;
pub mod lex;
pub mod lint;
pub mod parse;
pub mod pragma;
pub mod sema;
pub mod testgen;
pub mod translate;

pub use error::{CcError, Warning};
pub use lint::LintLevel;

/// Convenience: run the full compile pipeline on annotated source,
/// producing kernel specs and generated CUDA-like text. Lints at the
/// default [`LintLevel::Warn`]: error-severity findings abort the
/// compile, warnings and perf-notes ride along in [`Compiled::lint`].
pub fn compile(src: &str) -> Result<Compiled, CcError> {
    compile_with(src, LintLevel::default())
}

/// [`compile`] with an explicit lint level. `LintLevel::Off` skips the
/// analysis entirely; `Deny` also rejects warning-severity findings
/// (perf-notes never block compilation).
pub fn compile_with(src: &str, level: LintLevel) -> Result<Compiled, CcError> {
    let program = parse::parse(src)?;
    let analysis = sema::analyze(&program)?;
    let lint = if level == LintLevel::Off {
        lint::LintReport::default()
    } else {
        let report = lint::lint_program(src, &program, &analysis);
        if !report.passes(level) {
            return Err(CcError::Lint {
                reports: report.summaries(level),
            });
        }
        report
    };
    let kernels = translate::translate(&program, &analysis)?;
    let sources = kernels.iter().map(codegen::kernel_source).collect();
    let warnings = analysis
        .regions
        .iter()
        .flat_map(|r| r.warnings.clone())
        .collect();
    Ok(Compiled {
        program,
        analysis,
        kernels,
        sources,
        warnings,
        lint,
    })
}

/// Result of [`compile`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Parsed AST (also used by the interpreter for the CPU path).
    pub program: ast::Program,
    /// Per-region analysis (Algorithm 1 output).
    pub analysis: sema::Analysis,
    /// Translated kernels, one per directive.
    pub kernels: Vec<translate::KernelSpec>,
    /// Generated CUDA-like kernel sources, parallel to `kernels`.
    pub sources: Vec<String>,
    /// Accumulated non-fatal diagnostics.
    pub warnings: Vec<Warning>,
    /// Static-analysis findings that did not block compilation
    /// (empty when linting was `Off`).
    pub lint: lint::LintReport,
}

impl Compiled {
    /// The mapper kernel spec, if the source had a mapper directive.
    pub fn mapper(&self) -> Option<&translate::KernelSpec> {
        self.kernels
            .iter()
            .find(|k| k.kind == pragma::DirectiveKind::Mapper)
    }

    /// The combiner kernel spec, if present.
    pub fn combiner(&self) -> Option<&translate::KernelSpec> {
        self.kernels
            .iter()
            .find(|k| k.kind == pragma::DirectiveKind::Combiner)
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    #[test]
    fn end_to_end_compile_of_listing_1() {
        let src = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;
        let c = compile(src).unwrap();
        assert!(c.mapper().is_some());
        assert!(c.combiner().is_none());
        assert_eq!(c.sources.len(), 1);
        assert!(c.sources[0].contains("__global__"));
        assert!(c.warnings.is_empty());
    }

    #[test]
    fn compile_reports_directive_errors() {
        let src = r#"
int main() {
  char k[8]; int v;
  #pragma mapreduce combiner key(k) value(v)
  while (scanf("%s %d", k, &v) == 2) { }
}
"#;
        assert!(matches!(compile(src), Err(CcError::Directive { .. })));
    }
}
