//! Closure-compiled native backend.
//!
//! Lowers the typed AST **once per program** to a tree of boxed Rust
//! closures, then reuses that tree across records. Relative to the
//! interpreter the per-record work drops because compilation pre-pays:
//!
//! * variable names resolve to static frame-slot **offsets** (no
//!   per-access `HashMap` lookups or scope walks),
//! * `printf`/`scanf` format strings are parsed once into segments,
//! * call targets (user function vs builtin, and the builtin itself)
//!   dispatch is decided once,
//! * 2-D strided indexing is decided from the declaration site.
//!
//! **Cost-parity contract.** The closures charge [`InterpStats`] at the
//! exact points the interpreter does — one step+op per expression node
//! evaluated, one step per statement executed (loop iterations
//! included), `mem`/`sfu`/`records_in`/`lines_out` at identical call
//! sites with identical amounts — and produce identical stdout bytes
//! and identical error strings, in the same evaluation order. The
//! shared semantic core in [`crate::interp`] (value arithmetic, heap
//! ops, builtin bodies) is called from both backends so the contract
//! cannot drift silently; the differential suites enforce the rest.
//!
//! **Laziness.** The interpreter only faults on code it actually
//! executes, so lowering never fails: ill-formed constructs (unknown
//! names, non-literal `printf` formats, unsized arrays...) compile to
//! *deferred-error closures* that reproduce the interpreter's message
//! if — and only if — the construct is reached.
//!
//! **Documented divergences** (outside the supported subset; the
//! program generator never emits them, see [`crate::testgen`]):
//! * A `&scalar` reference that escapes its function activation or is
//!   held across a redeclaration observes different aliasing: the
//!   interpreter never frees slots, while the native frame truncates on
//!   return and reuses offsets across loop iterations.

use super::ElisionMode;
use crate::ast::*;
use crate::error::CcError;
use crate::interp::{
    alloc_buffer, as_f64, as_int, binary, binary_unchecked, builtin_arity_err, builtin_min_args,
    cast, check_bounds, cstr, default_value, getline_read, getline_store, leaf_type, num_add,
    parse_printf, parse_scanf, read_buf, render_printf, run_scanf, scan_token, sfu1, store_through,
    str_find, truthy, write_buf, write_cstr, Buffer, Flow, InterpStats, PrintfCx, ScanfCx,
    StreamIo, V,
};
use crate::lint::absint::SafetyFacts;
use std::collections::HashMap;
use std::sync::Arc;

/// Runtime state of one native execution (frame slots are a single
/// stack `Vec`; `base` is the current activation's frame start).
pub(crate) struct Env {
    heap: Vec<Buffer>,
    slots: Vec<V>,
    base: usize,
    stats: InterpStats,
    steps: u64,
    max_steps: u64,
}

impl Env {
    #[inline]
    fn tick(&mut self) -> Result<(), CcError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(CcError::interp("step limit exceeded (infinite loop?)"));
        }
        Ok(())
    }
}

/// A compiled expression: evaluates to a value.
type CExpr =
    Box<dyn Fn(&NativeProgram, &mut Env, &mut StreamIo) -> Result<V, CcError> + Send + Sync>;
/// A compiled statement: evaluates to control flow.
type CStmt =
    Box<dyn Fn(&NativeProgram, &mut Env, &mut StreamIo) -> Result<Flow, CcError> + Send + Sync>;
/// A compiled lvalue resolver: `(buffer, element offset)`.
type CPlace = Box<
    dyn Fn(&NativeProgram, &mut Env, &mut StreamIo) -> Result<(usize, usize), CcError>
        + Send
        + Sync,
>;
/// A compiled store: writes a value through an lvalue.
type CStore =
    Box<dyn Fn(&NativeProgram, &mut Env, &mut StreamIo, V) -> Result<(), CcError> + Send + Sync>;

/// One lowered function.
struct NFunc {
    name: String,
    nparams: usize,
    /// Frame size: offsets are allocated monotonically per function, so
    /// sibling scopes never alias (matching the interpreter's
    /// never-freed slots within one activation).
    nslots: usize,
    body: Vec<CStmt>,
}

/// A whole program lowered to closures. Compiled once; `run` may be
/// called many times (and from many threads — the tree is immutable).
pub struct NativeProgram {
    funcs: Vec<NFunc>,
    main: Option<usize>,
}

impl NativeProgram {
    /// Lower `prog` with the elision mode from `HETERO_ELIDE`. Never
    /// fails: see the module docs on laziness.
    pub fn compile(prog: &Program) -> Self {
        Self::compile_with_mode(prog, ElisionMode::from_env())
    }

    /// Lower `prog` with an explicit [`ElisionMode`], running the value
    /// analysis here to obtain the safety facts.
    pub fn compile_with_mode(prog: &Program, mode: ElisionMode) -> Self {
        let facts = SafetyFacts::for_program(prog);
        Self::compile_with_facts(prog, &facts, mode)
    }

    /// Lower `prog` reusing an already-computed [`SafetyFacts`] table
    /// (e.g. the one [`crate::sema::Analysis`] carries). Facts are
    /// keyed by AST node identity, so a table computed for a *different*
    /// `Program` value (a clone, say) is silently stale; when
    /// [`SafetyFacts::matches`] rejects the pairing we recompute rather
    /// than compile with every site unknown.
    pub fn compile_with_facts(prog: &Program, facts: &SafetyFacts, mode: ElisionMode) -> Self {
        let facts = if facts.matches(prog) {
            facts.clone()
        } else {
            SafetyFacts::for_program(prog)
        };
        let plan = Arc::new(ElisionPlan { mode, facts });
        // First function with a given name wins, matching
        // `Program::func` lookup order.
        let mut fn_indices: HashMap<String, usize> = HashMap::new();
        for (i, f) in prog.funcs.iter().enumerate() {
            fn_indices.entry(f.name.clone()).or_insert(i);
        }
        let fn_indices = Arc::new(fn_indices);
        let funcs = prog
            .funcs
            .iter()
            .map(|f| compile_func(&fn_indices, &plan, f))
            .collect();
        NativeProgram {
            funcs,
            main: fn_indices.get("main").copied(),
        }
    }

    /// Run `main` to completion against `io` under a step cap.
    pub fn run(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError> {
        let main = self
            .main
            .ok_or_else(|| CcError::interp("no main function"))?;
        let mut env = Env {
            heap: Vec::new(),
            slots: Vec::new(),
            base: 0,
            stats: InterpStats::default(),
            steps: 0,
            max_steps,
        };
        apply(self, main, Vec::new(), &mut env, io)?;
        Ok(env.stats)
    }
}

/// Call lowered function `fidx` with already-evaluated arguments.
fn apply(
    p: &NativeProgram,
    fidx: usize,
    args: Vec<V>,
    env: &mut Env,
    io: &mut StreamIo,
) -> Result<V, CcError> {
    let f = &p.funcs[fidx];
    if args.len() != f.nparams {
        return Err(CcError::interp(format!(
            "function {} expects {} args, got {}",
            f.name,
            f.nparams,
            args.len()
        )));
    }
    let base = env.slots.len();
    env.slots.resize(base + f.nslots, V::I(0));
    let saved_base = env.base;
    env.base = base;
    for (i, v) in args.into_iter().enumerate() {
        env.slots[base + i] = v;
    }
    let mut ret = V::I(0);
    for s in &f.body {
        match s(p, env, io)? {
            Flow::Return(v) => {
                ret = v;
                break;
            }
            Flow::Normal => {}
            _ => return Err(CcError::interp("break/continue outside loop")),
        }
    }
    env.base = saved_base;
    env.slots.truncate(base);
    Ok(ret)
}

// ====================================================================
// Compile-time name resolution.
// ====================================================================

#[derive(Clone, Copy)]
struct Local {
    off: usize,
    is_array: bool,
    /// Row length for `a[rows][cols]` declarations (2-D fast path).
    stride: Option<usize>,
}

/// What to lower at one guarded site (a subscript's bounds check or an
/// integer division's zero test).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SiteDecision {
    /// Emit the guard as always (unproven site, or elision off).
    Keep,
    /// Proven safe under [`ElisionMode::On`]: skip the guard. The
    /// guard charges no [`InterpStats`], so the elided closure is
    /// stats-identical; Rust's own checks (`Vec` indexing,
    /// `wrapping_div` on zero) remain as a panicking backstop should a
    /// proof ever be wrong.
    Elide,
    /// Proven safe under [`ElisionMode::Checked`]: run the guard and
    /// **panic** if it fires — the analyzer claimed it never can.
    Check,
}

/// The compile-time elision policy: the analysis' fact table plus the
/// requested mode.
struct ElisionPlan {
    mode: ElisionMode,
    facts: SafetyFacts,
}

impl ElisionPlan {
    fn decide(&self, proven: bool) -> SiteDecision {
        match (proven, self.mode) {
            (false, _) | (_, ElisionMode::Off) => SiteDecision::Keep,
            (true, ElisionMode::On) => SiteDecision::Elide,
            (true, ElisionMode::Checked) => SiteDecision::Check,
        }
    }

    /// Decision for the subscript site `e` (the `Index` expression).
    fn subscript(&self, e: &Expr) -> SiteDecision {
        self.decide(self.facts.subscript_safe(e))
    }

    /// Decision for the division/remainder site `e` (the `Binary`
    /// expression).
    fn division(&self, e: &Expr) -> SiteDecision {
        self.decide(self.facts.division_safe(e))
    }
}

struct Cx {
    fn_indices: Arc<HashMap<String, usize>>,
    plan: Arc<ElisionPlan>,
    scopes: Vec<HashMap<String, Local>>,
    next: usize,
    nslots: usize,
}

impl Cx {
    fn resolve(&self, name: &str) -> Option<Local> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn alloc(&mut self, name: &str, is_array: bool, stride: Option<usize>) -> usize {
        let off = self.next;
        self.next += 1;
        self.nslots = self.nslots.max(self.next);
        self.scopes.last_mut().unwrap().insert(
            name.to_string(),
            Local {
                off,
                is_array,
                stride,
            },
        );
        off
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        // Offsets are NOT reused after a scope closes: a sibling scope's
        // variables get fresh slots, like the interpreter's append-only
        // slot vector.
        self.scopes.pop();
    }
}

fn compile_func(
    fn_indices: &Arc<HashMap<String, usize>>,
    plan: &Arc<ElisionPlan>,
    f: &FuncDef,
) -> NFunc {
    let mut cx = Cx {
        fn_indices: Arc::clone(fn_indices),
        plan: Arc::clone(plan),
        scopes: vec![HashMap::new()],
        next: 0,
        nslots: 0,
    };
    for (_, pname) in &f.params {
        cx.alloc(pname, false, None);
    }
    let body = f.body.iter().map(|s| compile_stmt(&mut cx, s)).collect();
    NFunc {
        name: f.name.clone(),
        nparams: f.params.len(),
        nslots: cx.nslots,
        body,
    }
}

/// An expression closure that raises `msg` when (and only when)
/// executed — after the node's own step+op charge, like the
/// interpreter's lazy faults.
fn expr_err(msg: String) -> CExpr {
    Box::new(move |_, _, _| Err(CcError::interp(msg.clone())))
}

fn store_err(msg: String) -> CStore {
    Box::new(move |_, _, _, _| Err(CcError::interp(msg.clone())))
}

// ====================================================================
// Statements.
// ====================================================================

fn compile_stmt(cx: &mut Cx, s: &Stmt) -> CStmt {
    let raw: CStmt = match &s.kind {
        StmtKind::Decl(ds) => {
            let decls: Vec<_> = ds.iter().map(|d| compile_declarator(cx, d)).collect();
            Box::new(move |p, env, io| {
                for d in &decls {
                    d(p, env, io)?;
                }
                Ok(Flow::Normal)
            })
        }
        StmtKind::Expr(e) => {
            let e = compile_expr(cx, e);
            Box::new(move |p, env, io| {
                e(p, env, io)?;
                Ok(Flow::Normal)
            })
        }
        StmtKind::While { cond, body } => {
            let cond = compile_expr(cx, cond);
            let body = compile_stmt(cx, body);
            Box::new(move |p, env, io| {
                loop {
                    env.tick()?;
                    if !truthy(&cond(p, env, io)?) {
                        break;
                    }
                    match body(p, env, io)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            })
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            cx.push_scope();
            let init = init.as_ref().map(|i| compile_stmt(cx, i));
            let cond = cond.as_ref().map(|c| compile_expr(cx, c));
            let step = step.as_ref().map(|st| compile_expr(cx, st));
            let body = compile_stmt(cx, body);
            cx.pop_scope();
            Box::new(move |p, env, io| {
                if let Some(i) = &init {
                    // The interpreter discards the init statement's flow.
                    i(p, env, io)?;
                }
                loop {
                    env.tick()?;
                    if let Some(c) = &cond {
                        if !truthy(&c(p, env, io)?) {
                            break;
                        }
                    }
                    match body(p, env, io)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = &step {
                        st(p, env, io)?;
                    }
                }
                Ok(Flow::Normal)
            })
        }
        StmtKind::If { cond, then, els } => {
            let cond = compile_expr(cx, cond);
            let then = compile_stmt(cx, then);
            let els = els.as_ref().map(|e| compile_stmt(cx, e));
            Box::new(move |p, env, io| {
                if truthy(&cond(p, env, io)?) {
                    then(p, env, io)
                } else if let Some(e) = &els {
                    e(p, env, io)
                } else {
                    Ok(Flow::Normal)
                }
            })
        }
        StmtKind::Return(e) => {
            let e = e.as_ref().map(|x| compile_expr(cx, x));
            Box::new(move |p, env, io| {
                let v = match &e {
                    Some(x) => x(p, env, io)?,
                    None => V::I(0),
                };
                Ok(Flow::Return(v))
            })
        }
        StmtKind::Break => Box::new(|_, _, _| Ok(Flow::Break)),
        StmtKind::Continue => Box::new(|_, _, _| Ok(Flow::Continue)),
        StmtKind::Block(body) => {
            cx.push_scope();
            let body: Vec<_> = body.iter().map(|st| compile_stmt(cx, st)).collect();
            cx.pop_scope();
            Box::new(move |p, env, io| {
                for st in &body {
                    match st(p, env, io)? {
                        Flow::Normal => {}
                        f => return Ok(f),
                    }
                }
                Ok(Flow::Normal)
            })
        }
        StmtKind::Annotated(_, inner) => {
            // The inner statement ticks for itself; the Annotated
            // wrapper's own tick comes from the shared wrapper below.
            let inner = compile_stmt(cx, inner);
            Box::new(move |p, env, io| inner(p, env, io))
        }
        StmtKind::Empty => Box::new(|_, _, _| Ok(Flow::Normal)),
    };
    // Every executed statement costs one step, exactly like
    // `Interp::exec`.
    Box::new(move |p, env, io| {
        env.tick()?;
        raw(p, env, io)
    })
}

/// Compile one declarator to a closure that (re-)initializes its slot.
/// Runs every time the declaration statement executes (fresh buffer per
/// loop iteration, like the interpreter's `declare`).
fn compile_declarator(cx: &mut Cx, d: &Declarator) -> CStmt {
    // The initializer is compiled (and at runtime evaluated) before the
    // name is bound, so `int x = x;` refers to an outer `x`.
    match &d.ty {
        CType::Array(inner, n) => {
            let total = match inner.as_ref() {
                CType::Array(_, Some(cols)) => Some(n.unwrap_or(1) * cols),
                _ => *n,
            };
            let stride = match inner.as_ref() {
                CType::Array(_, Some(cols)) => Some(*cols),
                _ => None,
            };
            let elem = leaf_type(&d.ty);
            let off = cx.alloc(&d.name, true, stride);
            match total {
                Some(total) => Box::new(move |_, env, _| {
                    let buf = alloc_buffer(&mut env.heap, &elem, total);
                    env.slots[env.base + off] = V::Ptr { buf, off: 0 };
                    Ok(Flow::Normal)
                }),
                None => {
                    let msg = format!("array {} needs a size", d.name);
                    Box::new(move |_, _, _| Err(CcError::interp(msg.clone())))
                }
            }
        }
        _ => {
            let init = d.init.as_ref().map(|e| compile_expr(cx, e));
            let dv = default_value(&d.ty);
            let off = cx.alloc(&d.name, false, None);
            Box::new(move |p, env, io| {
                let v = match &init {
                    Some(e) => e(p, env, io)?,
                    None => dv.clone(),
                };
                env.slots[env.base + off] = v;
                Ok(Flow::Normal)
            })
        }
    }
}

// ====================================================================
// Expressions.
// ====================================================================

fn compile_expr(cx: &mut Cx, e: &Expr) -> CExpr {
    let raw: CExpr = match e {
        Expr::IntLit(v) => {
            let v = *v;
            Box::new(move |_, _, _| Ok(V::I(v)))
        }
        Expr::FloatLit(v) => {
            let v = *v;
            Box::new(move |_, _, _| Ok(V::F(v)))
        }
        Expr::CharLit(c) => {
            let v = *c as i64;
            Box::new(move |_, _, _| Ok(V::I(v)))
        }
        Expr::StrLit(s) => {
            // Fresh NUL-terminated buffer per evaluation, matching the
            // interpreter.
            let mut bytes = s.as_bytes().to_vec();
            bytes.push(0);
            Box::new(move |_, env, _| {
                env.heap.push(Buffer::Bytes(bytes.clone()));
                Ok(V::Ptr {
                    buf: env.heap.len() - 1,
                    off: 0,
                })
            })
        }
        Expr::Ident(name) => match cx.resolve(name) {
            Some(l) => {
                let off = l.off;
                Box::new(move |_, env, _| Ok(env.slots[env.base + off].clone()))
            }
            None => expr_err(format!("unknown variable {name}")),
        },
        Expr::Unary(op, x) => compile_unary(cx, *op, x),
        Expr::PostInc(x) | Expr::PostDec(x) => {
            let d = if matches!(e, Expr::PostInc(_)) { 1 } else { -1 };
            let xe = compile_expr(cx, x);
            let store = compile_assign_target(cx, x);
            Box::new(move |p, env, io| {
                let old = xe(p, env, io)?;
                let new = num_add(&old, d)?;
                store(p, env, io, new)?;
                Ok(old)
            })
        }
        Expr::Binary(op, a, b) => {
            let ca = compile_expr(cx, a);
            let cb = compile_expr(cx, b);
            match op {
                BinOp::And => Box::new(move |p, env, io| {
                    let va = ca(p, env, io)?;
                    if !truthy(&va) {
                        return Ok(V::I(0));
                    }
                    let vb = cb(p, env, io)?;
                    Ok(V::I(truthy(&vb) as i64))
                }),
                BinOp::Or => Box::new(move |p, env, io| {
                    let va = ca(p, env, io)?;
                    if truthy(&va) {
                        return Ok(V::I(1));
                    }
                    let vb = cb(p, env, io)?;
                    Ok(V::I(truthy(&vb) as i64))
                }),
                op => {
                    let op = *op;
                    // The value analysis keys division facts by this
                    // `Binary` node; the zero guard only exists on the
                    // integer Div/Rem path and charges no stats, so a
                    // proven site may route around it. (Compound
                    // `a /= b` has no `Binary` node and always keeps
                    // its guard.)
                    let decision = if matches!(op, BinOp::Div | BinOp::Rem) {
                        cx.plan.division(e)
                    } else {
                        SiteDecision::Keep
                    };
                    match decision {
                        SiteDecision::Keep => Box::new(move |p, env, io| {
                            let va = ca(p, env, io)?;
                            let vb = cb(p, env, io)?;
                            binary(op, va, vb)
                        }),
                        SiteDecision::Elide => Box::new(move |p, env, io| {
                            let va = ca(p, env, io)?;
                            let vb = cb(p, env, io)?;
                            binary_unchecked(op, va, vb)
                        }),
                        SiteDecision::Check => Box::new(move |p, env, io| {
                            let va = ca(p, env, io)?;
                            let vb = cb(p, env, io)?;
                            // Exactly the condition under which the
                            // kept guard would have erred.
                            if matches!((&va, &vb), (V::I(_), V::I(0))) {
                                panic!(
                                    "checked-elision soundness violation: integer \
                                     division/remainder proven nonzero saw a zero \
                                     denominator"
                                );
                            }
                            binary_unchecked(op, va, vb)
                        }),
                    }
                }
            }
        }
        Expr::Assign(op, lhs, rhs) => {
            let rv = compile_expr(cx, rhs);
            let old = if *op == AssignOp::None {
                None
            } else {
                Some(compile_expr(cx, lhs))
            };
            let store = compile_assign_target(cx, lhs);
            let bop = match op {
                AssignOp::None => None,
                AssignOp::Add => Some(BinOp::Add),
                AssignOp::Sub => Some(BinOp::Sub),
                AssignOp::Mul => Some(BinOp::Mul),
                AssignOp::Div => Some(BinOp::Div),
                AssignOp::Rem => Some(BinOp::Rem),
            };
            Box::new(move |p, env, io| {
                let rv = rv(p, env, io)?;
                let nv = match (&old, bop) {
                    (Some(oldc), Some(bop)) => {
                        let old = oldc(p, env, io)?;
                        binary(bop, old, rv)?
                    }
                    _ => rv,
                };
                store(p, env, io, nv.clone())?;
                Ok(nv)
            })
        }
        Expr::Cond(c, t, f) => {
            let c = compile_expr(cx, c);
            let t = compile_expr(cx, t);
            let f = compile_expr(cx, f);
            Box::new(move |p, env, io| {
                if truthy(&c(p, env, io)?) {
                    t(p, env, io)
                } else {
                    f(p, env, io)
                }
            })
        }
        Expr::Call(name, args) => compile_call(cx, name, args),
        Expr::Index(base, idx) => {
            let place = compile_place(cx, e, base, idx);
            Box::new(move |p, env, io| {
                let (buf, off) = place(p, env, io)?;
                env.stats.mem += 1;
                read_buf(&env.heap, buf, off)
            })
        }
        Expr::Cast(ty, x) => {
            let x = compile_expr(cx, x);
            let ty = ty.clone();
            Box::new(move |p, env, io| {
                let v = x(p, env, io)?;
                Ok(cast(&v, &ty))
            })
        }
        Expr::SizeOf(ty) => {
            let v = ty.scalar_size() as i64;
            Box::new(move |_, _, _| Ok(V::I(v)))
        }
    };
    // Every evaluated expression node costs one step and one op,
    // exactly like `Interp::eval`.
    Box::new(move |p, env, io| {
        env.tick()?;
        env.stats.ops += 1;
        raw(p, env, io)
    })
}

fn compile_unary(cx: &mut Cx, op: UnOp, x: &Expr) -> CExpr {
    match op {
        UnOp::AddrOf => match x {
            Expr::Ident(name) => match cx.resolve(name) {
                Some(l) => {
                    let off = l.off;
                    if l.is_array {
                        // Address of an array decays to the array
                        // pointer itself.
                        Box::new(move |_, env, _| Ok(env.slots[env.base + off].clone()))
                    } else {
                        Box::new(move |_, env, _| Ok(V::SlotRef(env.base + off)))
                    }
                }
                None => expr_err(format!("unknown variable {name}")),
            },
            Expr::Index(base, idx) => {
                let place = compile_place(cx, x, base, idx);
                Box::new(move |p, env, io| {
                    let (buf, off) = place(p, env, io)?;
                    Ok(V::Ptr { buf, off })
                })
            }
            _ => expr_err("unsupported address-of target".to_string()),
        },
        UnOp::Deref => {
            let xc = compile_expr(cx, x);
            Box::new(move |p, env, io| {
                let v = xc(p, env, io)?;
                match v {
                    V::Ptr { buf, off } => {
                        env.stats.mem += 1;
                        read_buf(&env.heap, buf, off)
                    }
                    V::SlotRef(s) => Ok(env.slots[s].clone()),
                    _ => Err(CcError::interp("dereference of non-pointer")),
                }
            })
        }
        UnOp::Neg => {
            let xc = compile_expr(cx, x);
            Box::new(move |p, env, io| match xc(p, env, io)? {
                V::I(v) => Ok(V::I(v.wrapping_neg())),
                V::F(v) => Ok(V::F(-v)),
                _ => Err(CcError::interp("negate non-number")),
            })
        }
        UnOp::Not => {
            let xc = compile_expr(cx, x);
            Box::new(move |p, env, io| Ok(V::I(!truthy(&xc(p, env, io)?) as i64)))
        }
        UnOp::BitNot => {
            let xc = compile_expr(cx, x);
            Box::new(move |p, env, io| match xc(p, env, io)? {
                V::I(v) => Ok(V::I(!v)),
                _ => Err(CcError::interp("~ on non-int")),
            })
        }
        UnOp::PreInc | UnOp::PreDec => {
            let d = if op == UnOp::PreInc { 1 } else { -1 };
            let xc = compile_expr(cx, x);
            let store = compile_assign_target(cx, x);
            Box::new(move |p, env, io| {
                let v = num_add(&xc(p, env, io)?, d)?;
                store(p, env, io, v.clone())?;
                Ok(v)
            })
        }
    }
}

/// [`check_bounds`] as lowered for one subscript site, per the
/// elision decision. `Keep` is the plain guard. `Elide` skips it: the
/// position is cast straight to `usize`, so a wrong proof lands on
/// `Vec` indexing's own panic (negative positions wrap to huge
/// offsets), never a silent wild read. `Check` runs the guard and
/// panics if it fires — the checked-elision soundness oracle. The
/// guard charges nothing to [`InterpStats`], so all three variants are
/// stats-, stdout-, and error-identical on guard-passing runs.
#[inline]
fn bounds_guard(
    decision: SiteDecision,
    heap: &[Buffer],
    buf: usize,
    pos: isize,
) -> Result<(usize, usize), CcError> {
    match decision {
        SiteDecision::Keep => check_bounds(heap, buf, pos),
        SiteDecision::Elide => Ok((buf, pos as usize)),
        SiteDecision::Check => match check_bounds(heap, buf, pos) {
            Ok(r) => Ok(r),
            Err(e) => panic!(
                "checked-elision soundness violation: subscript proven in-bounds faulted: {e}"
            ),
        },
    }
}

/// Compile `base[idx]` resolution to `(buffer, offset)`. Mirrors
/// `Interp::index_target`: `idx` evaluates first; a 2-D access over a
/// declared `a[rows][cols]` takes the strided fast path (the inner
/// `Index` node itself is never charged, only its row index), with a
/// runtime fallback to the generic path when the slot does not hold a
/// pointer (e.g. the array variable was reassigned).
///
/// `site` is the `Index` expression the value analysis keyed its
/// bounds fact by; a proven site lowers its `check_bounds` per the
/// plan's [`SiteDecision`]. Only the check itself is affected — the
/// pointer-vs-other dispatch and the fast path's generic fallback
/// (whose guard the analyzer did not reason about) are kept verbatim.
fn compile_place(cx: &mut Cx, site: &Expr, base: &Expr, idx: &Expr) -> CPlace {
    let decision = cx.plan.subscript(site);
    let idx_c = compile_expr(cx, idx);
    if let Expr::Index(inner_base, inner_idx) = base {
        if let Expr::Ident(name) = inner_base.as_ref() {
            if let Some(l) = cx.resolve(name) {
                if let Some(stride) = l.stride {
                    let row_c = compile_expr(cx, inner_idx);
                    let slot_off = l.off;
                    let generic = compile_expr(cx, base);
                    return Box::new(move |p, env, io| {
                        let i = as_int(&idx_c(p, env, io)?)? as isize;
                        if let V::Ptr { buf, off } = env.slots[env.base + slot_off].clone() {
                            let row = as_int(&row_c(p, env, io)?)? as isize;
                            let pos = off as isize + row * stride as isize + i;
                            return bounds_guard(decision, &env.heap, buf, pos);
                        }
                        match generic(p, env, io)? {
                            V::Ptr { buf, off } => check_bounds(&env.heap, buf, off as isize + i),
                            _ => Err(CcError::interp("indexing non-pointer")),
                        }
                    });
                }
            }
        }
    }
    // A proven 1-D site over a named local fuses the place closure:
    // with the guard discharged, the boxed base dispatch (and a literal
    // index's dispatch) are the only remaining per-access overhead.
    // The fused closures keep the skipped nodes' tick/ops bookkeeping
    // in the exact evaluation order (`idx` then `base`), so stats stay
    // bit-identical — elision buys wall-clock only, never cycles.
    if matches!(decision, SiteDecision::Elide) {
        if let Expr::Ident(name) = base {
            if let Some(l) = cx.resolve(name) {
                let slot_off = l.off;
                if let Expr::IntLit(n) = idx {
                    let i = *n as isize;
                    return Box::new(move |_, env, _| {
                        env.tick()?;
                        env.stats.ops += 1;
                        env.tick()?;
                        env.stats.ops += 1;
                        match &env.slots[env.base + slot_off] {
                            V::Ptr { buf, off } => Ok((*buf, (*off as isize + i) as usize)),
                            _ => Err(CcError::interp("indexing non-pointer")),
                        }
                    });
                }
                return Box::new(move |p, env, io| {
                    let i = as_int(&idx_c(p, env, io)?)? as isize;
                    env.tick()?;
                    env.stats.ops += 1;
                    match &env.slots[env.base + slot_off] {
                        V::Ptr { buf, off } => Ok((*buf, (*off as isize + i) as usize)),
                        _ => Err(CcError::interp("indexing non-pointer")),
                    }
                });
            }
        }
    }
    let base_c = compile_expr(cx, base);
    Box::new(move |p, env, io| {
        let i = as_int(&idx_c(p, env, io)?)? as isize;
        match base_c(p, env, io)? {
            V::Ptr { buf, off } => bounds_guard(decision, &env.heap, buf, off as isize + i),
            _ => Err(CcError::interp("indexing non-pointer")),
        }
    })
}

/// Compile an assignment target. Mirrors `Interp::assign_to`; note an
/// `Index` target re-resolves (and so re-charges) its index expressions
/// on the store, which is why `a[i]++` evaluates `i` twice.
fn compile_assign_target(cx: &mut Cx, lhs: &Expr) -> CStore {
    match lhs {
        Expr::Ident(name) => match cx.resolve(name) {
            Some(l) => {
                let off = l.off;
                Box::new(move |_, env, _, v| {
                    env.slots[env.base + off] = v;
                    Ok(())
                })
            }
            None => store_err(format!("unknown variable {name}")),
        },
        Expr::Index(base, idx) => {
            let place = compile_place(cx, lhs, base, idx);
            Box::new(move |p, env, io, v| {
                let (buf, off) = place(p, env, io)?;
                write_buf(&mut env.heap, &mut env.stats, buf, off, &v)
            })
        }
        Expr::Unary(UnOp::Deref, x) => {
            let xc = compile_expr(cx, x);
            Box::new(move |p, env, io, v| {
                let target = xc(p, env, io)?;
                match target {
                    V::Ptr { buf, off } => write_buf(&mut env.heap, &mut env.stats, buf, off, &v),
                    V::SlotRef(s) => {
                        env.slots[s] = v;
                        Ok(())
                    }
                    _ => Err(CcError::interp("store through non-pointer")),
                }
            })
        }
        Expr::Cast(_, inner) => compile_assign_target(cx, inner),
        _ => store_err("unsupported assignment target".to_string()),
    }
}

// ====================================================================
// Calls.
// ====================================================================

/// Printf/scanf argument source over compiled argument closures.
struct ArgsCx<'a, 'b> {
    p: &'a NativeProgram,
    env: &'a mut Env,
    args: &'b [CExpr],
    idx: usize,
}

impl PrintfCx for ArgsCx<'_, '_> {
    fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError> {
        let a = self
            .args
            .get(self.idx)
            .ok_or_else(|| CcError::interp("printf: not enough arguments"))?;
        self.idx += 1;
        a(self.p, self.env, io)
    }
    fn str_of(&self, p: &V) -> Result<Vec<u8>, CcError> {
        cstr(&self.env.heap, p)
    }
    fn stats(&mut self) -> &mut InterpStats {
        &mut self.env.stats
    }
}

impl ScanfCx for ArgsCx<'_, '_> {
    fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError> {
        let a = &self.args[self.idx];
        self.idx += 1;
        a(self.p, self.env, io)
    }
    fn write_str(&mut self, dst: &V, s: &[u8]) -> Result<(), CcError> {
        write_cstr(&mut self.env.heap, &mut self.env.stats, dst, s)
    }
    fn store(&mut self, dst: &V, v: V) -> Result<(), CcError> {
        store_through(
            &mut self.env.heap,
            &mut self.env.slots,
            &mut self.env.stats,
            dst,
            v,
        )
    }
    fn stats(&mut self) -> &mut InterpStats {
        &mut self.env.stats
    }
}

fn compile_call(cx: &mut Cx, name: &str, args: &[Expr]) -> CExpr {
    // User-defined functions shadow builtins, matching `Interp::call`.
    if let Some(&fidx) = cx.fn_indices.get(name) {
        let cargs: Vec<CExpr> = args.iter().map(|a| compile_expr(cx, a)).collect();
        return Box::new(move |p, env, io| {
            let mut vals = Vec::with_capacity(cargs.len());
            for a in &cargs {
                vals.push(a(p, env, io)?);
            }
            apply(p, fidx, vals, env, io)
        });
    }
    let Some(need) = builtin_min_args(name) else {
        return expr_err(format!("unknown function {name}"));
    };
    if args.len() < need {
        // The interpreter's arity guard fires before any argument is
        // evaluated; so does this deferred error.
        let err = builtin_arity_err(name, need, args.len());
        return Box::new(move |_, _, _| Err(err.clone()));
    }
    match name {
        "getline" => {
            let target = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                // Record is consumed (or end-of-input returned) before
                // the target argument is evaluated.
                let Some((ptr, len)) = getline_read(io, &mut env.heap, &mut env.stats)? else {
                    return Ok(V::I(-1));
                };
                let t = target(p, env, io)?;
                getline_store(&mut env.slots, t, ptr)?;
                Ok(V::I(len))
            })
        }
        "getWord" | "getTok" => {
            let word_mode = name == "getWord";
            let a: Vec<CExpr> = args.iter().take(5).map(|x| compile_expr(cx, x)).collect();
            Box::new(move |p, env, io| {
                let line = a[0](p, env, io)?;
                let offset = as_int(&a[1](p, env, io)?)?;
                let word = a[2](p, env, io)?;
                let read = as_int(&a[3](p, env, io)?)?;
                let max_len = as_int(&a[4](p, env, io)?)?;
                scan_token(
                    &mut env.heap,
                    &mut env.stats,
                    &line,
                    offset,
                    &word,
                    read,
                    max_len,
                    word_mode,
                )
                .map(V::I)
            })
        }
        "printf" => {
            let Expr::StrLit(fmt) = &args[0] else {
                return expr_err("printf needs a literal format".to_string());
            };
            let segs = parse_printf(fmt);
            let cargs: Vec<CExpr> = args[1..].iter().map(|a| compile_expr(cx, a)).collect();
            Box::new(move |p, env, io| {
                let mut acx = ArgsCx {
                    p,
                    env,
                    args: &cargs,
                    idx: 0,
                };
                render_printf(&segs, &mut acx, io)
            })
        }
        "scanf" => {
            let Expr::StrLit(fmt) = &args[0] else {
                return expr_err("scanf needs a literal format".to_string());
            };
            let convs = parse_scanf(fmt);
            let nargs = args.len();
            let cargs: Vec<CExpr> = args[1..].iter().map(|a| compile_expr(cx, a)).collect();
            Box::new(move |p, env, io| {
                let mut acx = ArgsCx {
                    p,
                    env,
                    args: &cargs,
                    idx: 0,
                };
                run_scanf(&convs, nargs, &mut acx, io)
            })
        }
        "strfind" => {
            let h = compile_expr(cx, &args[0]);
            let n = compile_expr(cx, &args[1]);
            Box::new(move |p, env, io| {
                let hv = h(p, env, io)?;
                let nv = n(p, env, io)?;
                let hay = cstr(&env.heap, &hv)?;
                let needle = cstr(&env.heap, &nv)?;
                env.stats.mem += (hay.len() + needle.len()) as u64;
                Ok(V::I(str_find(&hay, &needle)))
            })
        }
        "strcmp" => {
            let a = compile_expr(cx, &args[0]);
            let b = compile_expr(cx, &args[1]);
            Box::new(move |p, env, io| {
                let av = a(p, env, io)?;
                let bv = b(p, env, io)?;
                let sa = cstr(&env.heap, &av)?;
                let sb = cstr(&env.heap, &bv)?;
                env.stats.mem += (sa.len() + sb.len()) as u64;
                Ok(V::I(match sa.cmp(&sb) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            })
        }
        "strcpy" => {
            let dst = compile_expr(cx, &args[0]);
            let src = compile_expr(cx, &args[1]);
            Box::new(move |p, env, io| {
                let dv = dst(p, env, io)?;
                let sv = src(p, env, io)?;
                let s = cstr(&env.heap, &sv)?;
                env.stats.mem += s.len() as u64;
                write_cstr(&mut env.heap, &mut env.stats, &dv, &s)?;
                Ok(dv)
            })
        }
        "strlen" => {
            let a = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                let v = a(p, env, io)?;
                let s = cstr(&env.heap, &v)?;
                Ok(V::I(s.len() as i64))
            })
        }
        "atoi" => {
            let a = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                let v = a(p, env, io)?;
                let s = cstr(&env.heap, &v)?;
                let txt = String::from_utf8_lossy(&s);
                Ok(V::I(txt.trim().parse::<i64>().unwrap_or(0)))
            })
        }
        "atof" => {
            let a = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                let v = a(p, env, io)?;
                let s = cstr(&env.heap, &v)?;
                let txt = String::from_utf8_lossy(&s);
                Ok(V::F(txt.trim().parse::<f64>().unwrap_or(0.0)))
            })
        }
        "sqrt" | "exp" | "log" | "fabs" | "floor" | "ceil" | "erf" => {
            let sfu_name: &'static str = match name {
                "sqrt" => "sqrt",
                "exp" => "exp",
                "log" => "log",
                "fabs" => "fabs",
                "floor" => "floor",
                "ceil" => "ceil",
                _ => "erf",
            };
            let a = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                env.stats.sfu += 1;
                let x = as_f64(&a(p, env, io)?)?;
                Ok(V::F(sfu1(sfu_name, x)))
            })
        }
        "pow" => {
            let a = compile_expr(cx, &args[0]);
            let b = compile_expr(cx, &args[1]);
            Box::new(move |p, env, io| {
                env.stats.sfu += 1;
                let x = as_f64(&a(p, env, io)?)?;
                let y = as_f64(&b(p, env, io)?)?;
                Ok(V::F(x.powf(y)))
            })
        }
        "malloc" | "calloc" => {
            let is_calloc = name == "calloc";
            let a = compile_expr(cx, &args[0]);
            let b = if is_calloc {
                Some(compile_expr(cx, &args[1]))
            } else {
                None
            };
            Box::new(move |p, env, io| {
                let n = as_int(&a(p, env, io)?)? as usize;
                let n = match &b {
                    Some(b) => n * as_int(&b(p, env, io)?)? as usize,
                    None => n,
                };
                env.heap.push(Buffer::Bytes(vec![0; n.max(1)]));
                Ok(V::Ptr {
                    buf: env.heap.len() - 1,
                    off: 0,
                })
            })
        }
        "free" => {
            let cargs: Vec<CExpr> = args.iter().map(|a| compile_expr(cx, a)).collect();
            Box::new(move |p, env, io| {
                for a in &cargs {
                    a(p, env, io)?;
                }
                Ok(V::I(0))
            })
        }
        "abs" => {
            let a = compile_expr(cx, &args[0]);
            Box::new(move |p, env, io| {
                let v = as_int(&a(p, env, io)?)?;
                Ok(V::I(v.wrapping_abs()))
            })
        }
        _ => unreachable!("builtin_min_args covered {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::parse::parse;

    /// Run a source under both backends on the same input and demand
    /// exact agreement of (stdout, stats) or of error text.
    fn differential(src: &str, io_make: impl Fn() -> StreamIo) {
        let prog = parse(src).unwrap();
        let mut io_i = io_make();
        let ri = Interp::new(&prog)
            .with_max_steps(2_000_000)
            .run_main(&mut io_i)
            .map_err(|e| e.to_string());
        let native = NativeProgram::compile(&prog);
        let mut io_n = io_make();
        let rn = native.run(&mut io_n, 2_000_000).map_err(|e| e.to_string());
        assert_eq!(ri.is_ok(), rn.is_ok(), "outcome diverged for:\n{src}");
        match (ri, rn) {
            (Ok(si), Ok(sn)) => {
                assert_eq!(si, sn, "stats diverged for:\n{src}");
                assert_eq!(
                    String::from_utf8_lossy(&io_i.stdout),
                    String::from_utf8_lossy(&io_n.stdout),
                    "stdout diverged for:\n{src}"
                );
            }
            (Err(ei), Err(en)) => assert_eq!(ei, en, "error text diverged for:\n{src}"),
            _ => unreachable!(),
        }
    }

    fn lines(ls: &[&str]) -> Vec<Vec<u8>> {
        ls.iter().map(|l| l.as_bytes().to_vec()).collect()
    }

    #[test]
    fn wordcount_mapper_parity() {
        let src = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;
        differential(src, || {
            StreamIo::lines(lines(&[
                "the quick brown fox",
                "",
                "  spaced   out  ",
                "tail",
            ]))
        });
    }

    #[test]
    fn combiner_scanf_parity() {
        let src = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  while( (read = scanf("%s %d", word, &val)) == 2 ) {
    if(strcmp(word, prevWord) == 0 ) {
      count += val;
    } else {
      if(prevWord[0] != '\0')
        printf("%s\t%d\n", prevWord, count);
      strcpy(prevWord, word);
      count = val;
    }
  }
  if(prevWord[0] != '\0')
    printf("%s\t%d\n", prevWord, count);
  return 0;
}
"#;
        differential(src, || {
            StreamIo::kvs(
                [("a", "1"), ("a", "2"), ("b", "5"), ("c", "1"), ("c", "1")]
                    .iter()
                    .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                    .collect(),
            )
        });
    }

    #[test]
    fn control_flow_and_functions_parity() {
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
  int i;
  for (i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 8) break;
    printf("f%d\t%d\n", i, fib(i));
  }
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    #[test]
    fn two_dim_arrays_and_math_parity() {
        let src = r#"
int main() {
  double m[3][4]; int i, j; double s; s = 0.0;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 4; j++)
      m[i][j] = i * 4 + j + 0.5;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 4; j++)
      s += sqrt(m[i][j]) + pow(m[i][j], 0.5);
  printf("s\t%.6f\n", s);
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    #[test]
    fn pointer_ops_parity() {
        let src = r#"
int main() {
  char buf[32]; char *p; int n;
  strcpy(buf, "hello world");
  p = buf + 6;
  n = strlen(p);
  *p = 'W';
  printf("%s\t%d\t%d\n", buf, n, strfind(buf, "World"));
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    #[test]
    fn error_cases_parity() {
        // Runtime faults must carry identical messages.
        for src in [
            "int main() { int a[3]; a[7] = 1; return 0; }",
            "int main() { int a; a = 1 / 0; return 0; }",
            "int main() { int a; a = 1 % 0; return 0; }",
            "int main() { int a; a = nosuchvar; return 0; }",
            "int main() { nosuchfn(3); return 0; }",
            "int main() { getline(); return 0; }",
            "int main() { while (1) { } return 0; }",
            "int noargs() { return 1; } int main() { return noargs(7); }",
        ] {
            differential(src, || StreamIo::lines(vec![]));
        }
    }

    #[test]
    fn lazy_faults_do_not_fire_when_unreached() {
        // An ill-formed call sitting behind `if (0)` must not fail in
        // either backend (lazy faulting).
        let src = r#"
int main() {
  if (0) { nosuchfn(nosuchvar); printf(3); }
  printf("ok\t1\n");
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    #[test]
    fn sibling_scopes_do_not_alias() {
        let src = r#"
int main() {
  int total; total = 0;
  { int a; a = 5; total += a; }
  { int b; b = 7; total += b; }
  printf("t\t%d\n", total);
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    #[test]
    fn loop_redeclared_array_is_fresh_each_iteration() {
        let src = r#"
int main() {
  int i;
  for (i = 0; i < 3; i++) {
    int a[4];
    a[i] = a[i] + 1;
    printf("i%d\t%d\n", i, a[i]);
  }
  return 0;
}
"#;
        differential(src, || StreamIo::lines(vec![]));
    }

    /// First expression matching `pred`, in statement order of `main`.
    fn find_expr<'p>(prog: &'p Program, pred: &dyn Fn(&Expr) -> bool) -> &'p Expr {
        fn in_expr<'p>(e: &'p Expr, pred: &dyn Fn(&Expr) -> bool) -> Option<&'p Expr> {
            if pred(e) {
                return Some(e);
            }
            match e {
                Expr::Unary(_, x) | Expr::PostInc(x) | Expr::PostDec(x) | Expr::Cast(_, x) => {
                    in_expr(x, pred)
                }
                Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                    in_expr(a, pred).or_else(|| in_expr(b, pred))
                }
                Expr::Assign(_, a, b) => in_expr(a, pred).or_else(|| in_expr(b, pred)),
                Expr::Cond(c, t, f) => in_expr(c, pred)
                    .or_else(|| in_expr(t, pred))
                    .or_else(|| in_expr(f, pred)),
                Expr::Call(_, args) => args.iter().find_map(|a| in_expr(a, pred)),
                _ => None,
            }
        }
        let mut found = None;
        walk_stmts(&prog.func("main").unwrap().body, &mut |s| {
            if found.is_some() {
                return;
            }
            found = match &s.kind {
                StmtKind::Expr(e) | StmtKind::Return(Some(e)) => in_expr(e, pred),
                StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => in_expr(cond, pred),
                _ => None,
            };
        });
        found.expect("test program contains the site")
    }

    #[test]
    #[should_panic(expected = "checked-elision soundness violation")]
    fn checked_mode_panics_on_forged_subscript_fact() {
        // `a[9]` is out of bounds; a forged "proven in-bounds" fact
        // must trip the checked-elision oracle, not read wild.
        let src = "int main() { int a[2]; int i; i = 9; printf(\"%d\\n\", a[i]); return 0; }";
        let prog = parse(src).unwrap();
        let mut facts = SafetyFacts::forged_for(&prog);
        facts.claim_subscript(find_expr(&prog, &|e| matches!(e, Expr::Index(..))));
        let native = NativeProgram::compile_with_facts(&prog, &facts, ElisionMode::Checked);
        let _ = native.run(&mut StreamIo::lines(vec![]), 100_000);
    }

    #[test]
    #[should_panic(expected = "checked-elision soundness violation")]
    fn checked_mode_panics_on_forged_division_fact() {
        let src = "int main() { int d; d = 0; printf(\"%d\\n\", 7 / d); return 0; }";
        let prog = parse(src).unwrap();
        let mut facts = SafetyFacts::forged_for(&prog);
        facts.claim_division(find_expr(&prog, &|e| {
            matches!(e, Expr::Binary(BinOp::Div, _, _))
        }));
        let native = NativeProgram::compile_with_facts(&prog, &facts, ElisionMode::Checked);
        let _ = native.run(&mut StreamIo::lines(vec![]), 100_000);
    }

    #[test]
    fn stale_facts_are_recomputed_not_trusted() {
        // Facts forged for one program must not apply to a clone: the
        // token mismatch forces a recompute, so the wrong claim is
        // discarded and the guard stays (interp-identical error).
        let src = "int main() { int a[2]; int i; i = 9; printf(\"%d\\n\", a[i]); return 0; }";
        let prog = parse(src).unwrap();
        let clone = prog.clone();
        let mut facts = SafetyFacts::forged_for(&prog);
        facts.claim_subscript(find_expr(&prog, &|e| matches!(e, Expr::Index(..))));
        assert!(!facts.matches(&clone));
        let native = NativeProgram::compile_with_facts(&clone, &facts, ElisionMode::Checked);
        let err = native
            .run(&mut StreamIo::lines(vec![]), 100_000)
            .unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn elision_modes_agree_on_stats_stdout_and_errors() {
        // Subscript-, division-, and 2-D-heavy program: every mode must
        // be bit-identical on stats and bytes (guards charge nothing).
        let src = r#"
int main() {
  int a[8]; double m[3][4]; int i; int j; int s; s = 0;
  for (i = 0; i < 8; i++) a[i] = i * 3;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 4; j++)
      m[i][j] = a[i + j] / (i + 1);
  for (i = 0; i < 8; i++) s += a[i] % 5;
  printf("s\t%d\n", s + (int) m[2][3]);
  return 0;
}
"#;
        let prog = parse(src).unwrap();
        let mut base: Option<(Vec<u8>, InterpStats)> = None;
        for mode in [ElisionMode::Off, ElisionMode::On, ElisionMode::Checked] {
            let native = NativeProgram::compile_with_mode(&prog, mode);
            let mut io = StreamIo::lines(vec![]);
            let stats = native.run(&mut io, 1_000_000).unwrap();
            match &base {
                None => base = Some((io.stdout, stats)),
                Some((out0, st0)) => {
                    assert_eq!(&io.stdout, out0, "stdout diverged in {:?}", mode);
                    assert_eq!(&stats, st0, "stats diverged in {:?}", mode);
                }
            }
        }
        // And the proofs actually covered sites to elide.
        let facts = SafetyFacts::for_program(&prog);
        let (subs, divs, _) = facts.proven_counts();
        assert!(subs >= 4, "subscripts proven: {subs}");
        assert!(divs >= 2, "divisions proven: {divs}");
    }

    #[test]
    fn native_is_reusable_and_thread_safe() {
        let src = "int main() { int i; int s; s = 0; for (i = 0; i < 100; i++) s += i; printf(\"s\\t%d\\n\", s); return 0; }";
        let prog = parse(src).unwrap();
        let native = std::sync::Arc::new(NativeProgram::compile(&prog));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let n = std::sync::Arc::clone(&native);
            handles.push(std::thread::spawn(move || {
                let mut io = StreamIo::lines(vec![]);
                let stats = n.run(&mut io, 1_000_000).unwrap();
                (io.stdout, stats)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (out, stats) in &results {
            assert_eq!(out, b"s\t4950\n");
            assert_eq!(*stats, results[0].1);
        }
    }
}
