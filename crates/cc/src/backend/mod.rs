//! Kernel execution backends.
//!
//! A [`KernelBackend`] runs a parsed MapReduce program against a
//! [`StreamIo`] and returns [`InterpStats`]. Two implementations exist:
//!
//! * [`InterpBackend`] — the tree-walking interpreter
//!   ([`crate::interp::Interp`]), the executable specification of the
//!   C subset.
//! * [`NativeBackend`] — the closure-compiled backend
//!   ([`native`]): the AST is lowered **once per program** to a tree of
//!   boxed Rust closures with names resolved to frame-slot offsets and
//!   `printf`/`scanf` formats pre-parsed, then reused across records.
//!
//! The two are contractually equivalent: byte-identical stdout,
//! identical `InterpStats` (so gpusim cost charging is bit-identical),
//! and identical error messages. The differential test stack
//! (`tests/differential_gen.rs`, `tests/edge_cases.rs`, and the
//! 8-benchmark matrix in `hetero-core`) pins this contract.
//!
//! Select at runtime with the `HETERO_BACKEND` environment variable
//! (`interp` or `native`); the default is `native`.

pub mod native;

use crate::ast::Program;
use crate::error::CcError;
use crate::interp::{Interp, InterpStats, StreamIo, DEFAULT_MAX_STEPS};

/// A way to execute a kernel program against streaming I/O.
pub trait KernelBackend: Send + Sync {
    /// Run `main` to completion with an explicit evaluation-step cap.
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError>;

    /// Run `main` to completion with the default step cap.
    fn run(&self, io: &mut StreamIo) -> Result<InterpStats, CcError> {
        self.run_capped(io, DEFAULT_MAX_STEPS)
    }

    /// Short backend name (`"interp"` / `"native"`), used in traces and
    /// bench labels.
    fn name(&self) -> &'static str;
}

/// Which backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Tree-walking interpreter (the executable spec).
    Interp,
    /// Closure-compiled native backend (the default).
    #[default]
    Native,
}

impl BackendKind {
    /// Parse a backend name (`"interp"`/`"interpreter"` or
    /// `"native"`/`"compiled"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(BackendKind::Interp),
            "native" | "compiled" => Some(BackendKind::Native),
            _ => None,
        }
    }

    /// Read the `HETERO_BACKEND` environment variable; unset or
    /// unrecognized values fall back to the default ([`Native`]).
    ///
    /// [`Native`]: BackendKind::Native
    pub fn from_env() -> Self {
        std::env::var("HETERO_BACKEND")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// The backend's short name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Native => "native",
        }
    }
}

/// Build a backend of the given kind over `prog`. The native backend
/// compiles the whole program here, once; running it is then
/// allocation-light per record batch.
pub fn make_backend(kind: BackendKind, prog: &Program) -> Box<dyn KernelBackend> {
    match kind {
        BackendKind::Interp => Box::new(InterpBackend::new(prog.clone())),
        BackendKind::Native => Box::new(NativeBackend::compile(prog)),
    }
}

/// Backend that re-walks the AST with [`Interp`] on every run.
pub struct InterpBackend {
    prog: Program,
}

impl InterpBackend {
    /// Wrap a parsed program.
    pub fn new(prog: Program) -> Self {
        InterpBackend { prog }
    }
}

impl KernelBackend for InterpBackend {
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError> {
        Interp::new(&self.prog)
            .with_max_steps(max_steps)
            .run_main(io)
    }

    fn name(&self) -> &'static str {
        "interp"
    }
}

/// Backend that runs the closure-compiled [`native::NativeProgram`].
pub struct NativeBackend {
    prog: native::NativeProgram,
}

impl NativeBackend {
    /// Lower `prog` to closures (no errors: ill-formed constructs
    /// compile to deferred-error closures so laziness matches the
    /// interpreter).
    pub fn compile(prog: &Program) -> Self {
        NativeBackend {
            prog: native::NativeProgram::compile(prog),
        }
    }
}

impl KernelBackend for NativeBackend {
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError> {
        self.prog.run(io, max_steps)
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn backend_kind_parses_and_defaults() {
        assert_eq!(BackendKind::parse("interp"), Some(BackendKind::Interp));
        assert_eq!(BackendKind::parse("NATIVE"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("compiled"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("jit"), None);
        assert_eq!(BackendKind::default(), BackendKind::Native);
        assert_eq!(BackendKind::Interp.name(), "interp");
        assert_eq!(BackendKind::Native.name(), "native");
    }

    #[test]
    fn both_backends_run_a_trivial_program() {
        let prog = parse("int main() { printf(\"k\\t%d\\n\", 7); return 0; }").unwrap();
        for kind in [BackendKind::Interp, BackendKind::Native] {
            let b = make_backend(kind, &prog);
            let mut io = StreamIo::lines(vec![]);
            let stats = b.run(&mut io).unwrap();
            assert_eq!(io.stdout, b"k\t7\n", "{}", b.name());
            assert_eq!(stats.lines_out, 1);
        }
    }
}
