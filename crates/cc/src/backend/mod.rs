//! Kernel execution backends.
//!
//! A [`KernelBackend`] runs a parsed MapReduce program against a
//! [`StreamIo`] and returns [`InterpStats`]. Two implementations exist:
//!
//! * [`InterpBackend`] — the tree-walking interpreter
//!   ([`crate::interp::Interp`]), the executable specification of the
//!   C subset.
//! * [`NativeBackend`] — the closure-compiled backend
//!   ([`native`]): the AST is lowered **once per program** to a tree of
//!   boxed Rust closures with names resolved to frame-slot offsets and
//!   `printf`/`scanf` formats pre-parsed, then reused across records.
//!
//! The two are contractually equivalent: byte-identical stdout,
//! identical `InterpStats` (so gpusim cost charging is bit-identical),
//! and identical error messages. The differential test stack
//! (`tests/differential_gen.rs`, `tests/edge_cases.rs`, and the
//! 8-benchmark matrix in `hetero-core`) pins this contract.
//!
//! Select at runtime with the `HETERO_BACKEND` environment variable
//! (`interp` or `native`); the default is `native`.

pub mod native;

use crate::ast::Program;
use crate::error::CcError;
use crate::interp::{Interp, InterpStats, StreamIo, DEFAULT_MAX_STEPS};

/// A way to execute a kernel program against streaming I/O.
pub trait KernelBackend: Send + Sync {
    /// Run `main` to completion with an explicit evaluation-step cap.
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError>;

    /// Run `main` to completion with the default step cap.
    fn run(&self, io: &mut StreamIo) -> Result<InterpStats, CcError> {
        self.run_capped(io, DEFAULT_MAX_STEPS)
    }

    /// Short backend name (`"interp"` / `"native"`), used in traces and
    /// bench labels.
    fn name(&self) -> &'static str;
}

/// Which backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Tree-walking interpreter (the executable spec).
    Interp,
    /// Closure-compiled native backend (the default).
    #[default]
    Native,
}

impl BackendKind {
    /// Parse a backend name (`"interp"`/`"interpreter"` or
    /// `"native"`/`"compiled"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(BackendKind::Interp),
            "native" | "compiled" => Some(BackendKind::Native),
            _ => None,
        }
    }

    /// Read the `HETERO_BACKEND` environment variable; unset or
    /// unrecognized values fall back to the default ([`Native`]).
    ///
    /// [`Native`]: BackendKind::Native
    pub fn from_env() -> Self {
        std::env::var("HETERO_BACKEND")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// The backend's short name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Native => "native",
        }
    }
}

/// How the native backend treats host-side guards at sites the value
/// analysis ([`crate::lint::absint`]) proved safe.
///
/// Guards (bounds checks, integer div/mod zero tests) charge nothing to
/// [`InterpStats`], so every mode produces bit-identical stats, stdout,
/// and error text; only wall-clock changes. Select at runtime with the
/// `HETERO_ELIDE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElisionMode {
    /// Elide guards at proven-safe sites (the default).
    #[default]
    On,
    /// Keep every guard (pre-elision behavior).
    Off,
    /// Elide nothing, but at proven-safe sites **panic** if the guard
    /// would have fired — a live soundness oracle for the analyzer,
    /// used by the generative differential suite as a fuzzer.
    Checked,
}

impl ElisionMode {
    /// Parse a mode name (`"on"`/`"elide"`/`"1"`, `"off"`/`"0"`,
    /// `"checked"`/`"check"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "on" | "elide" | "1" => Some(ElisionMode::On),
            "off" | "0" => Some(ElisionMode::Off),
            "checked" | "check" => Some(ElisionMode::Checked),
            _ => None,
        }
    }

    /// Read the `HETERO_ELIDE` environment variable; unset or
    /// unrecognized values fall back to the default ([`On`]).
    ///
    /// [`On`]: ElisionMode::On
    pub fn from_env() -> Self {
        std::env::var("HETERO_ELIDE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// The mode's short name.
    pub fn name(self) -> &'static str {
        match self {
            ElisionMode::On => "on",
            ElisionMode::Off => "off",
            ElisionMode::Checked => "checked",
        }
    }
}

/// Build a backend of the given kind over `prog`. The native backend
/// compiles the whole program here, once; running it is then
/// allocation-light per record batch. Elision follows `HETERO_ELIDE`.
pub fn make_backend(kind: BackendKind, prog: &Program) -> Box<dyn KernelBackend> {
    make_backend_with_mode(kind, prog, ElisionMode::from_env())
}

/// [`make_backend`] with an explicit [`ElisionMode`] (tests and the
/// differential matrix use this to avoid environment races).
pub fn make_backend_with_mode(
    kind: BackendKind,
    prog: &Program,
    mode: ElisionMode,
) -> Box<dyn KernelBackend> {
    match kind {
        BackendKind::Interp => Box::new(InterpBackend::new(prog.clone())),
        BackendKind::Native => Box::new(NativeBackend::with_mode(prog, mode)),
    }
}

/// [`make_backend_with_mode`] reusing an already-computed
/// [`SafetyFacts`] table — typically the one [`crate::sema::Analysis`]
/// carries — instead of re-running the value analysis. Stale facts
/// (computed for a different `Program` value) are detected and
/// recomputed, never silently applied.
pub fn make_backend_with_facts(
    kind: BackendKind,
    prog: &Program,
    facts: &crate::lint::absint::SafetyFacts,
    mode: ElisionMode,
) -> Box<dyn KernelBackend> {
    match kind {
        BackendKind::Interp => Box::new(InterpBackend::new(prog.clone())),
        BackendKind::Native => Box::new(NativeBackend {
            prog: native::NativeProgram::compile_with_facts(prog, facts, mode),
        }),
    }
}

/// Backend that re-walks the AST with [`Interp`] on every run.
pub struct InterpBackend {
    prog: Program,
}

impl InterpBackend {
    /// Wrap a parsed program.
    pub fn new(prog: Program) -> Self {
        InterpBackend { prog }
    }
}

impl KernelBackend for InterpBackend {
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError> {
        Interp::new(&self.prog)
            .with_max_steps(max_steps)
            .run_main(io)
    }

    fn name(&self) -> &'static str {
        "interp"
    }
}

/// Backend that runs the closure-compiled [`native::NativeProgram`].
pub struct NativeBackend {
    prog: native::NativeProgram,
}

impl NativeBackend {
    /// Lower `prog` to closures (no errors: ill-formed constructs
    /// compile to deferred-error closures so laziness matches the
    /// interpreter). Elision follows `HETERO_ELIDE`.
    pub fn compile(prog: &Program) -> Self {
        NativeBackend {
            prog: native::NativeProgram::compile(prog),
        }
    }

    /// [`compile`](Self::compile) with an explicit [`ElisionMode`].
    pub fn with_mode(prog: &Program, mode: ElisionMode) -> Self {
        NativeBackend {
            prog: native::NativeProgram::compile_with_mode(prog, mode),
        }
    }
}

impl KernelBackend for NativeBackend {
    fn run_capped(&self, io: &mut StreamIo, max_steps: u64) -> Result<InterpStats, CcError> {
        self.prog.run(io, max_steps)
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn backend_kind_parses_and_defaults() {
        assert_eq!(BackendKind::parse("interp"), Some(BackendKind::Interp));
        assert_eq!(BackendKind::parse("NATIVE"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("compiled"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("jit"), None);
        assert_eq!(BackendKind::default(), BackendKind::Native);
        assert_eq!(BackendKind::Interp.name(), "interp");
        assert_eq!(BackendKind::Native.name(), "native");
    }

    #[test]
    fn both_backends_run_a_trivial_program() {
        let prog = parse("int main() { printf(\"k\\t%d\\n\", 7); return 0; }").unwrap();
        for kind in [BackendKind::Interp, BackendKind::Native] {
            let b = make_backend(kind, &prog);
            let mut io = StreamIo::lines(vec![]);
            let stats = b.run(&mut io).unwrap();
            assert_eq!(io.stdout, b"k\t7\n", "{}", b.name());
            assert_eq!(stats.lines_out, 1);
        }
    }
}
