//! Recursive-descent parser for the HeteroDoop C subset.

use crate::ast::*;
use crate::error::{CcError, Span};
use crate::lex::{lex, Tok, Token};
use crate::pragma::parse_pragma;

/// Parse a complete annotated translation unit.
pub fn parse(src: &str) -> Result<Program, CcError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        directives: Vec::new(),
    };
    let mut funcs = Vec::new();
    while !p.at_eof() {
        // Skip stray pragmas at top level (none are expected there).
        if let Tok::Pragma(_) = p.peek() {
            p.bump();
            continue;
        }
        funcs.push(p.function()?);
    }
    Ok(Program {
        funcs,
        directives: p.directives,
    })
}

const TYPE_KWS: &[&str] = &[
    "void", "char", "int", "float", "double", "long", "unsigned", "size_t", "short", "const",
    "signed",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    directives: Vec<crate::pragma::Directive>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CcError::parse(
                self.span(),
                format!("expected '{p}', found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CcError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CcError::parse(
                self.span(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn is_type_kw(&self, t: &Tok) -> bool {
        matches!(t, Tok::Ident(s) if TYPE_KWS.contains(&s.as_str()))
    }

    /// Parse declaration specifiers (`const unsigned long`...) into a base
    /// type.
    fn base_type(&mut self) -> Result<CType, CcError> {
        let mut ty: Option<CType> = None;
        let mut any = false;
        loop {
            let kw = match self.peek() {
                Tok::Ident(s) if TYPE_KWS.contains(&s.as_str()) => s.clone(),
                _ => break,
            };
            self.bump();
            any = true;
            match kw.as_str() {
                "void" => ty = Some(CType::Void),
                "char" => ty = Some(CType::Char),
                "int" | "long" | "short" | "size_t" => {
                    if ty.is_none() {
                        ty = Some(CType::Int)
                    }
                }
                "float" => ty = Some(CType::Float),
                "double" => ty = Some(CType::Double),
                "unsigned" | "signed" | "const" => {
                    // Qualifiers; default the base to int if nothing else
                    // follows.
                    if ty.is_none() {
                        ty = Some(CType::Int)
                    }
                }
                _ => unreachable!(),
            }
        }
        if !any {
            return Err(CcError::parse(self.span(), "expected type"));
        }
        Ok(ty.unwrap_or(CType::Int))
    }

    /// Parse a declarator after the base type: pointers, name, array
    /// suffixes.
    fn declarator(&mut self, base: &CType) -> Result<(CType, String), CcError> {
        let mut ty = base.clone();
        while self.eat_punct("*") {
            ty = CType::Ptr(Box::new(ty));
        }
        let name = self.expect_ident()?;
        // Array suffixes bind outside-in: `char w[4][8]` is array of 4
        // arrays of 8 chars.
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let n = match self.peek().clone() {
                Tok::IntLit(v) => {
                    self.bump();
                    Some(v as usize)
                }
                Tok::Punct("]") => None,
                _ => {
                    // Non-literal sizes: evaluate later, treat as dynamic.
                    // Accept a single identifier.
                    self.bump();
                    None
                }
            };
            self.expect_punct("]")?;
            dims.push(n);
        }
        for n in dims.into_iter().rev() {
            ty = CType::Array(Box::new(ty), n);
        }
        Ok((ty, name))
    }

    fn function(&mut self) -> Result<FuncDef, CcError> {
        let span = self.span();
        let ret = self.base_type()?;
        let mut ret = ret;
        while self.eat_punct("*") {
            ret = CType::Ptr(Box::new(ret));
        }
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if matches!(self.peek(), Tok::Ident(s) if s == "void")
                    && matches!(self.peek2(), Tok::Punct(")"))
                {
                    self.bump();
                    break;
                }
                let base = self.base_type()?;
                let (ty, pname) = self.declarator(&base)?;
                params.push((ty, pname));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct("{")?;
        let body = self.block_body()?;
        Ok(FuncDef {
            ret,
            name,
            params,
            body,
            span,
        })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, CcError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(CcError::parse(self.span(), "unexpected EOF in block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CcError> {
        let span = self.span();
        // Pragma: attach to the next statement.
        if let Tok::Pragma(text) = self.peek().clone() {
            let pspan = self.span();
            self.bump();
            return match parse_pragma(&text, pspan)? {
                Some(d) => {
                    self.directives.push(d);
                    let idx = self.directives.len() - 1;
                    let inner = self.stmt()?;
                    Ok(Stmt {
                        kind: StmtKind::Annotated(idx, Box::new(inner)),
                        span,
                    })
                }
                None => self.stmt(), // foreign pragma: skip
            };
        }
        if self.eat_punct("{") {
            let body = self.block_body()?;
            return Ok(Stmt {
                kind: StmtKind::Block(body),
                span,
            });
        }
        if self.eat_punct(";") {
            return Ok(Stmt {
                kind: StmtKind::Empty,
                span,
            });
        }
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.eat_punct(";") {
                    None
                } else {
                    Some(Box::new(self.decl_or_expr_stmt()?))
                };
                let cond = if matches!(self.peek(), Tok::Punct(";")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                let step = if matches!(self.peek(), Tok::Punct(")")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(")")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                })
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then = Box::new(self.stmt()?);
                let els = if matches!(self.peek(), Tok::Ident(s) if s == "else") {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt {
                    kind: StmtKind::If { cond, then, els },
                    span,
                })
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                let e = if self.eat_punct(";") {
                    return Ok(Stmt {
                        kind: StmtKind::Return(None),
                        span,
                    });
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                Ok(Stmt {
                    kind: StmtKind::Return(e),
                    span,
                })
            }
            Tok::Ident(kw) if kw == "break" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span,
                })
            }
            Tok::Ident(kw) if kw == "continue" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span,
                })
            }
            _ => self.decl_or_expr_stmt(),
        }
    }

    /// A declaration or an expression statement, ending with `;`.
    fn decl_or_expr_stmt(&mut self) -> Result<Stmt, CcError> {
        let span = self.span();
        if self.is_type_kw(self.peek()) {
            let base = self.base_type()?;
            let mut decls = Vec::new();
            loop {
                let (ty, name) = self.declarator(&base)?;
                let init = if self.eat_punct("=") {
                    Some(self.assign_expr()?)
                } else {
                    None
                };
                decls.push(Declarator { ty, name, init });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Decl(decls),
                span,
            });
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Expr(e),
            span,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CcError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CcError> {
        let lhs = self.cond_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => Some(AssignOp::None),
            Tok::Punct("+=") => Some(AssignOp::Add),
            Tok::Punct("-=") => Some(AssignOp::Sub),
            Tok::Punct("*=") => Some(AssignOp::Mul),
            Tok::Punct("/=") => Some(AssignOp::Div),
            Tok::Punct("%=") => Some(AssignOp::Rem),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?;
            return Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn cond_expr(&mut self) -> Result<Expr, CcError> {
        let c = self.binary_expr(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.cond_expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    fn bin_op_prec(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek() {
            Tok::Punct("||") => (BinOp::Or, 1),
            Tok::Punct("&&") => (BinOp::And, 2),
            Tok::Punct("|") => (BinOp::BitOr, 3),
            Tok::Punct("^") => (BinOp::BitXor, 4),
            Tok::Punct("&") => (BinOp::BitAnd, 5),
            Tok::Punct("==") => (BinOp::Eq, 6),
            Tok::Punct("!=") => (BinOp::Ne, 6),
            Tok::Punct("<") => (BinOp::Lt, 7),
            Tok::Punct("<=") => (BinOp::Le, 7),
            Tok::Punct(">") => (BinOp::Gt, 7),
            Tok::Punct(">=") => (BinOp::Ge, 7),
            Tok::Punct("<<") => (BinOp::Shl, 8),
            Tok::Punct(">>") => (BinOp::Shr, 8),
            Tok::Punct("+") => (BinOp::Add, 9),
            Tok::Punct("-") => (BinOp::Sub, 9),
            Tok::Punct("*") => (BinOp::Mul, 10),
            Tok::Punct("/") => (BinOp::Div, 10),
            Tok::Punct("%") => (BinOp::Rem, 10),
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CcError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.bin_op_prec() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CcError> {
        // Cast: '(' type ... ')'.
        if matches!(self.peek(), Tok::Punct("(")) && self.is_type_kw(self.peek2()) {
            self.bump();
            let base = self.base_type()?;
            let mut ty = base;
            while self.eat_punct("*") {
                ty = CType::Ptr(Box::new(ty));
            }
            self.expect_punct(")")?;
            let inner = self.unary_expr()?;
            return Ok(Expr::Cast(ty, Box::new(inner)));
        }
        match self.peek().clone() {
            Tok::Punct("-") => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("!") => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("~") => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("&") => {
                self.bump();
                Ok(Expr::Unary(UnOp::AddrOf, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("*") => {
                self.bump();
                Ok(Expr::Unary(UnOp::Deref, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("++") => {
                self.bump();
                Ok(Expr::Unary(UnOp::PreInc, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("--") => {
                self.bump();
                Ok(Expr::Unary(UnOp::PreDec, Box::new(self.unary_expr()?)))
            }
            Tok::Punct("+") => {
                self.bump();
                self.unary_expr()
            }
            Tok::Ident(kw) if kw == "sizeof" => {
                self.bump();
                self.expect_punct("(")?;
                let e = if self.is_type_kw(self.peek()) {
                    let base = self.base_type()?;
                    let mut ty = base;
                    while self.eat_punct("*") {
                        ty = CType::Ptr(Box::new(ty));
                    }
                    Expr::SizeOf(ty)
                } else {
                    // sizeof(expr): treat as sizeof int for the subset.
                    let _ = self.expr()?;
                    Expr::SizeOf(CType::Int)
                };
                self.expect_punct(")")?;
                Ok(e)
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CcError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct("(") {
                let name = match &e {
                    Expr::Ident(n) => n.clone(),
                    _ => {
                        return Err(CcError::parse(
                            self.span(),
                            "only direct calls are supported",
                        ))
                    }
                };
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assign_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr::Call(name, args);
            } else if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("++") {
                e = Expr::PostInc(Box::new(e));
            } else if self.eat_punct("--") {
                e = Expr::PostDec(Box::new(e));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CcError> {
        let span = self.span();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::IntLit(v)),
            Tok::FloatLit(v) => Ok(Expr::FloatLit(v)),
            Tok::StrLit(s) => Ok(Expr::StrLit(s)),
            Tok::CharLit(c) => Ok(Expr::CharLit(c)),
            Tok::Ident(s) => Ok(Expr::Ident(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(CcError::parse(
                span,
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let p = parse("int main() { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn parses_declarations_with_mixed_declarators() {
        let p = parse("int main() { char word[30], *line; int a = 1, b; }").unwrap();
        match &p.funcs[0].body[0].kind {
            StmtKind::Decl(ds) => {
                assert_eq!(ds.len(), 2);
                assert_eq!(ds[0].ty, CType::Array(Box::new(CType::Char), Some(30)));
                assert_eq!(ds[1].ty, CType::Ptr(Box::new(CType::Char)));
            }
            k => panic!("expected decl, got {k:?}"),
        }
    }

    #[test]
    fn assignment_in_condition() {
        // The idiom the mapper loop depends on.
        let p = parse("int main() { int r; while( (r = getline()) != -1 ) { r = 0; } }").unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(body[1].kind, StmtKind::While { .. }));
    }

    #[test]
    fn pragma_attaches_to_following_stmt() {
        let src = r#"
int main() {
  int one; char word[30];
  #pragma mapreduce mapper key(word) value(one)
  while (1) { one = 1; }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.directives.len(), 1);
        let annotated = p.funcs[0]
            .body
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Annotated(..)));
        match &annotated.unwrap().kind {
            StmtKind::Annotated(0, inner) => {
                assert!(matches!(inner.kind, StmtKind::While { .. }))
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn pragma_can_annotate_a_block() {
        // Listing 2 attaches the combiner pragma to a block.
        let src = r#"
int main() {
  int count; char w[30]; int v; char pw[30];
  #pragma mapreduce combiner key(pw) value(count) keyin(w) valuein(v) firstprivate(pw, count)
  {
    while (scanf() == 2) { count += v; }
  }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.directives.len(), 1);
        let annotated = p.funcs[0]
            .body
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Annotated(..)))
            .unwrap();
        match &annotated.kind {
            StmtKind::Annotated(_, inner) => assert!(matches!(inner.kind, StmtKind::Block(_))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let p = parse("int main() { int x; x = 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[1].kind {
            StmtKind::Expr(Expr::Assign(_, _, rhs)) => match rhs.as_ref() {
                Expr::Binary(BinOp::Add, a, b) => {
                    assert_eq!(**a, Expr::IntLit(1));
                    assert!(matches!(**b, Expr::Binary(BinOp::Mul, _, _)));
                }
                e => panic!("bad precedence: {e:?}"),
            },
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn casts_and_sizeof() {
        let p = parse("int main() { char *line; line = (char*) malloc(100*sizeof(char)); }");
        assert!(p.is_ok());
    }

    #[test]
    fn for_loops_and_ternary() {
        let p = parse(
            "int main() { int i, s; s = 0; for (i = 0; i < 10; i++) { s += i > 5 ? 2 : 1; } }",
        )
        .unwrap();
        assert!(p.funcs[0]
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. })));
    }

    #[test]
    fn address_of_and_deref() {
        let p = parse("int main() { int v; int *p; p = &v; *p = 3; }").unwrap();
        assert_eq!(p.funcs[0].body.len(), 4);
    }

    #[test]
    fn multiple_functions() {
        let p = parse(
            "double dist(double a, double b) { return (a-b)*(a-b); } int main() { return 0; }",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 2);
        assert!(p.func("dist").is_some());
        assert_eq!(p.func("dist").unwrap().params.len(), 2);
    }

    #[test]
    fn two_dimensional_arrays() {
        let p = parse("int main() { double c[4][8]; c[1][2] = 3.0; }").unwrap();
        match &p.funcs[0].body[0].kind {
            StmtKind::Decl(ds) => {
                assert_eq!(
                    ds[0].ty,
                    CType::Array(
                        Box::new(CType::Array(Box::new(CType::Double), Some(8))),
                        Some(4)
                    )
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn paper_listing_1_parses() {
        let src = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) \
    keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.directives.len(), 1);
        assert_eq!(p.directives[0].key, "word");
    }

    #[test]
    fn paper_listing_2_parses() {
        let src = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) {
        count += val;
      } else {
        if(prevWord[0] != '\0')
          printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0')
      printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.directives.len(), 1);
        assert_eq!(p.directives[0].keyin.as_deref(), Some("word"));
    }

    #[test]
    fn error_reports_line() {
        let e = parse("int main() {\n int x = ;\n}").unwrap_err();
        match e {
            CcError::Parse { span, .. } => assert_eq!(span.line, 2),
            other => panic!("{other:?}"),
        }
    }
}
