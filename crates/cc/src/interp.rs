//! Interpreter for the HeteroDoop C subset.
//!
//! Executes a parsed MapReduce program functionally. The streaming I/O
//! model mirrors Hadoop Streaming (paper §2.2): the mapper reads records
//! from `stdin` via `getline` and emits KV pairs with `printf`; the
//! combiner reads sorted KV pairs via `scanf` and emits with `printf`.
//!
//! The interpreter also counts abstract operations ([`InterpStats`]) so
//! that the surrounding system can charge GPU/CPU cost models for the
//! *same* computation the program actually performed.
//!
//! The interpreter is the **executable specification** of the C subset:
//! the native backend ([`crate::backend::native`]) must agree with it on
//! every program, byte for byte and stat for stat. To keep the two from
//! drifting, everything semantic that both need — value arithmetic, the
//! buffer heap, and the builtin library (`printf`/`scanf`/`getline`/
//! string ops/SFUs) — lives here as shared `pub(crate)` functions; the
//! interpreter and the native backend are both thin drivers over this
//! common core.

use crate::ast::*;
use crate::error::CcError;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Default evaluation-step budget shared by both backends.
pub(crate) const DEFAULT_MAX_STEPS: u64 = 500_000_000;

/// Operation counts accumulated while interpreting — consumed by the cost
/// models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Plain operations (arith/logic/compare/assign/index).
    pub ops: u64,
    /// Memory touches (buffer reads + writes).
    pub mem: u64,
    /// Special-function calls (sqrt/exp/log/pow...).
    pub sfu: u64,
    /// Records consumed via `getline`/`scanf`.
    pub records_in: u64,
    /// Lines emitted via `printf`.
    pub lines_out: u64,
}

/// Where `getline`/`scanf` read from.
#[derive(Debug, Clone)]
pub enum Input {
    /// Line records for the mapper.
    Lines(Vec<Vec<u8>>),
    /// Sorted `(key, value)` pairs for the combiner; values rendered as
    /// text, key and value separated per the `scanf` format.
    Kvs(Vec<(Vec<u8>, Vec<u8>)>),
}

/// Streaming I/O state for one interpreter run.
#[derive(Debug)]
pub struct StreamIo {
    pub(crate) input: Input,
    pub(crate) cursor: usize,
    /// Raw bytes written by `printf`.
    pub stdout: Vec<u8>,
}

impl StreamIo {
    /// Feed line records (mapper input).
    pub fn lines(lines: Vec<Vec<u8>>) -> Self {
        StreamIo {
            input: Input::Lines(lines),
            cursor: 0,
            stdout: Vec::new(),
        }
    }

    /// Feed KV pairs (combiner input).
    pub fn kvs(kvs: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        StreamIo {
            input: Input::Kvs(kvs),
            cursor: 0,
            stdout: Vec::new(),
        }
    }

    /// Parse the emitted stdout as tab-separated `key\tvalue` lines.
    pub fn emitted_kvs(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.stdout
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| match l.iter().position(|&b| b == b'\t') {
                Some(t) => (l[..t].to_vec(), l[t + 1..].to_vec()),
                None => (l.to_vec(), Vec::new()),
            })
            .collect()
    }
}

/// Values.
#[derive(Debug, Clone)]
pub(crate) enum V {
    I(i64),
    F(f64),
    /// Pointer into heap buffer `buf` at element offset `off`.
    Ptr {
        buf: usize,
        off: usize,
    },
    /// Address of a scalar slot (`&var`).
    SlotRef(usize),
    Null,
}

/// Heap buffers; element kind fixed at allocation.
#[derive(Debug, Clone)]
pub(crate) enum Buffer {
    Bytes(Vec<u8>),
    Ints(Vec<i64>),
    Doubles(Vec<f64>),
}

impl Buffer {
    pub(crate) fn len(&self) -> usize {
        match self {
            Buffer::Bytes(v) => v.len(),
            Buffer::Ints(v) => v.len(),
            Buffer::Doubles(v) => v.len(),
        }
    }
}

/// Statement-level control flow.
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(V),
}

// ====================================================================
// Shared semantic core — used verbatim by the interpreter AND the
// native backend so op/mem/sfu accounting and error text can never
// diverge between them.
// ====================================================================

/// Read one element from a heap buffer (no `mem` charge — callers charge
/// at their access site, mirroring the original interpreter).
pub(crate) fn read_buf(heap: &[Buffer], buf: usize, off: usize) -> Result<V, CcError> {
    Ok(match &heap[buf] {
        Buffer::Bytes(v) => V::I(v[off] as i64),
        Buffer::Ints(v) => V::I(v[off]),
        Buffer::Doubles(v) => V::F(v[off]),
    })
}

/// Write one element into a heap buffer, charging one `mem` touch.
pub(crate) fn write_buf(
    heap: &mut [Buffer],
    stats: &mut InterpStats,
    buf: usize,
    off: usize,
    v: &V,
) -> Result<(), CcError> {
    stats.mem += 1;
    match &mut heap[buf] {
        Buffer::Bytes(b) => b[off] = as_int(v)? as u8,
        Buffer::Ints(b) => b[off] = as_int(v)?,
        Buffer::Doubles(b) => b[off] = as_f64(v)?,
    }
    Ok(())
}

/// Bounds-check a signed element position against a buffer.
pub(crate) fn check_bounds(
    heap: &[Buffer],
    buf: usize,
    pos: isize,
) -> Result<(usize, usize), CcError> {
    if pos < 0 || pos as usize >= heap[buf].len() {
        return Err(CcError::interp(format!(
            "index {pos} out of bounds for buffer of {}",
            heap[buf].len()
        )));
    }
    Ok((buf, pos as usize))
}

/// Allocate a zeroed buffer of `n` elements of leaf type `elem`.
pub(crate) fn alloc_buffer(heap: &mut Vec<Buffer>, elem: &CType, n: usize) -> usize {
    let b = match elem {
        CType::Char => Buffer::Bytes(vec![0; n]),
        CType::Float | CType::Double => Buffer::Doubles(vec![0.0; n]),
        _ => Buffer::Ints(vec![0; n]),
    };
    heap.push(b);
    heap.len() - 1
}

/// Read a NUL-terminated string starting at a pointer, up to `limit`
/// bytes.
pub(crate) fn cstr_n(heap: &[Buffer], p: &V, limit: usize) -> Result<Vec<u8>, CcError> {
    match p {
        V::Ptr { buf, off } => match &heap[*buf] {
            Buffer::Bytes(b) => {
                let end = b.len().min(off.saturating_add(limit));
                let slice = &b[*off..end];
                let n = slice.iter().position(|&c| c == 0).unwrap_or(slice.len());
                Ok(slice[..n].to_vec())
            }
            _ => Err(CcError::interp("string op on non-char buffer")),
        },
        V::Null => Err(CcError::interp("string op on NULL")),
        _ => Err(CcError::interp("string op on non-pointer")),
    }
}

/// Read a NUL-terminated string starting at a pointer.
pub(crate) fn cstr(heap: &[Buffer], p: &V) -> Result<Vec<u8>, CcError> {
    cstr_n(heap, p, usize::MAX)
}

/// Write a NUL-terminated string through a pointer (truncating to the
/// destination buffer), charging `mem` for the copied bytes.
pub(crate) fn write_cstr(
    heap: &mut [Buffer],
    stats: &mut InterpStats,
    p: &V,
    s: &[u8],
) -> Result<(), CcError> {
    match p {
        V::Ptr { buf, off } => match &mut heap[*buf] {
            Buffer::Bytes(b) => {
                let avail = b.len().saturating_sub(*off);
                if avail == 0 {
                    return Err(CcError::interp("write_cstr: no space"));
                }
                let n = s.len().min(avail - 1);
                b[*off..*off + n].copy_from_slice(&s[..n]);
                b[*off + n] = 0;
                stats.mem += n as u64;
                Ok(())
            }
            _ => Err(CcError::interp("write_cstr on non-char buffer")),
        },
        _ => Err(CcError::interp("write_cstr on non-pointer")),
    }
}

/// Store a scalar through a `scanf`-style destination (`&var` or a
/// buffer pointer).
pub(crate) fn store_through(
    heap: &mut [Buffer],
    slots: &mut [V],
    stats: &mut InterpStats,
    dst: &V,
    v: V,
) -> Result<(), CcError> {
    match dst {
        V::SlotRef(s) => {
            slots[*s] = v;
            Ok(())
        }
        V::Ptr { buf, off } => write_buf(heap, stats, *buf, *off, &v),
        _ => Err(CcError::interp("store through non-pointer")),
    }
}

/// `getline` front half: consume the next line record (if any) into a
/// fresh NUL-terminated heap buffer. Returns `None` at end of input
/// (the builtin then returns `-1` without evaluating its arguments,
/// exactly like the original interpreter).
pub(crate) fn getline_read(
    io: &mut StreamIo,
    heap: &mut Vec<Buffer>,
    stats: &mut InterpStats,
) -> Result<Option<(V, i64)>, CcError> {
    let record = match &mut io.input {
        Input::Lines(lines) => {
            if io.cursor >= lines.len() {
                return Ok(None);
            }
            let r = lines[io.cursor].clone();
            io.cursor += 1;
            r
        }
        Input::Kvs(_) => return Err(CcError::interp("getline on KV input")),
    };
    stats.records_in += 1;
    stats.mem += record.len() as u64;
    let mut bytes = record;
    bytes.push(b'\n');
    let len = bytes.len();
    bytes.push(0);
    heap.push(Buffer::Bytes(bytes));
    Ok(Some((
        V::Ptr {
            buf: heap.len() - 1,
            off: 0,
        },
        len as i64,
    )))
}

/// `getline` back half: store the fresh line pointer through the `&line`
/// argument.
pub(crate) fn getline_store(slots: &mut [V], target: V, ptr: V) -> Result<(), CcError> {
    match target {
        V::SlotRef(s) => {
            slots[s] = ptr;
            Ok(())
        }
        V::Ptr { .. } => Err(CcError::interp("getline target must be &ptr")),
        _ => Err(CcError::interp("bad getline target")),
    }
}

/// Shared core of `getWord` (word mode: split on non-`[A-Za-z0-9_']`)
/// and `getTok` (token mode: split on whitespace only). Returns chars
/// consumed or `-1`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_token(
    heap: &mut [Buffer],
    stats: &mut InterpStats,
    line: &V,
    offset: i64,
    dst: &V,
    read: i64,
    max_len: i64,
    word_mode: bool,
) -> Result<i64, CcError> {
    let offset = offset as usize;
    let read = read as usize;
    let max_len = max_len as usize;
    let buf = cstr_n(heap, line, read)?;
    let is_sep = |b: u8| {
        if word_mode {
            !(b.is_ascii_alphanumeric() || b == b'_' || b == b'\'')
        } else {
            b.is_ascii_whitespace()
        }
    };
    let mut i = offset.min(buf.len());
    while i < buf.len() && is_sep(buf[i]) {
        i += 1;
    }
    if i >= buf.len() {
        return Ok(-1);
    }
    let start = i;
    while i < buf.len() && !is_sep(buf[i]) {
        i += 1;
    }
    let w = buf[start..i.min(start + max_len.saturating_sub(1))].to_vec();
    stats.mem += w.len() as u64;
    write_cstr(heap, stats, dst, &w)?;
    Ok((i - offset) as i64)
}

/// One parsed `printf` format segment.
#[derive(Debug, Clone)]
pub(crate) enum PSeg {
    /// Literal text (including `%%` → `%` and malformed tails).
    Lit(String),
    /// A `%[.prec][lh]conv` conversion; validity of `conv` is checked at
    /// render time (so unreached bad conversions don't fail a program,
    /// exactly like the interpreter).
    Conv { prec: Option<usize>, conv: u8 },
}

/// Parse a `printf` format string into segments. Mirrors the historical
/// in-line scanner byte for byte, including the quirk that a conversion
/// truncated by end-of-format renders as a lone `%` and stops.
pub(crate) fn parse_printf(fmt: &str) -> Vec<PSeg> {
    let mut segs = Vec::new();
    let mut lit = String::new();
    let fb = fmt.as_bytes();
    let mut i = 0;
    while i < fb.len() {
        if fb[i] == b'%' && i + 1 < fb.len() {
            let mut j = i + 1;
            let mut prec: Option<usize> = None;
            if fb[j] == b'.' {
                let mut p = 0usize;
                j += 1;
                while j < fb.len() && fb[j].is_ascii_digit() {
                    p = p * 10 + (fb[j] - b'0') as usize;
                    j += 1;
                }
                prec = Some(p);
            }
            while j < fb.len() && (fb[j] == b'l' || fb[j] == b'h') {
                j += 1;
            }
            if j >= fb.len() {
                lit.push('%');
                break;
            }
            let conv = fb[j];
            if conv == b'%' {
                lit.push('%');
                i = j + 1;
                continue;
            }
            if !lit.is_empty() {
                segs.push(PSeg::Lit(std::mem::take(&mut lit)));
            }
            segs.push(PSeg::Conv { prec, conv });
            i = j + 1;
        } else {
            lit.push(fb[i] as char);
            i += 1;
        }
    }
    if !lit.is_empty() {
        segs.push(PSeg::Lit(lit));
    }
    segs
}

/// Backend-specific context for [`render_printf`]: lazily evaluates the
/// next argument and resolves `%s` pointers.
pub(crate) trait PrintfCx {
    /// Evaluate the next argument (errors with "printf: not enough
    /// arguments" when exhausted).
    fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError>;
    /// Resolve a value as a C string for `%s`.
    fn str_of(&self, p: &V) -> Result<Vec<u8>, CcError>;
    /// Stats sink for the rendered output.
    fn stats(&mut self) -> &mut InterpStats;
}

/// Render parsed `printf` segments: evaluate arguments lazily in
/// conversion order, then charge `lines_out`/`mem` and append to stdout
/// only on full success.
pub(crate) fn render_printf<C: PrintfCx>(
    segs: &[PSeg],
    cx: &mut C,
    io: &mut StreamIo,
) -> Result<V, CcError> {
    let mut out = String::new();
    for seg in segs {
        match seg {
            PSeg::Lit(s) => out.push_str(s),
            PSeg::Conv { prec, conv } => {
                let v = cx.next(io)?;
                match conv {
                    b'd' | b'i' | b'u' => {
                        let _ = write!(out, "{}", as_int(&v)?);
                    }
                    b'c' => out.push(as_int(&v)? as u8 as char),
                    b's' => {
                        let s = cx.str_of(&v)?;
                        out.push_str(&String::from_utf8_lossy(&s));
                    }
                    b'f' | b'e' | b'g' => {
                        let x = as_f64(&v)?;
                        let p = prec.unwrap_or(6);
                        match conv {
                            b'f' => {
                                let _ = write!(out, "{x:.p$}", p = p);
                            }
                            b'e' => {
                                let _ = write!(out, "{x:.p$e}", p = p);
                            }
                            _ => {
                                let _ = write!(out, "{x}");
                            }
                        }
                    }
                    other => {
                        return Err(CcError::interp(format!(
                            "printf: unsupported conversion %{}",
                            *other as char
                        )))
                    }
                }
            }
        }
    }
    let stats = cx.stats();
    stats.lines_out += out.bytes().filter(|&b| b == b'\n').count() as u64;
    stats.mem += out.len() as u64;
    io.stdout.extend_from_slice(out.as_bytes());
    Ok(V::I(out.len() as i64))
}

/// Parse a `scanf` format into its whitespace-separated conversions.
pub(crate) fn parse_scanf(fmt: &str) -> Vec<String> {
    fmt.split_whitespace().map(str::to_string).collect()
}

/// Backend-specific context for [`run_scanf`].
pub(crate) trait ScanfCx {
    /// Evaluate the next destination argument.
    fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError>;
    /// `%s`: copy a field through the destination pointer.
    fn write_str(&mut self, dst: &V, s: &[u8]) -> Result<(), CcError>;
    /// `%d`/`%f` family: store a scalar through the destination.
    fn store(&mut self, dst: &V, v: V) -> Result<(), CcError>;
    /// Stats sink for the consumed record.
    fn stats(&mut self) -> &mut InterpStats;
}

/// Run one `scanf` call: consume the next KV record and convert it into
/// the destinations. `nargs` is the total call argument count including
/// the format. Returns the match count, or `-1` at end of input.
pub(crate) fn run_scanf<C: ScanfCx>(
    convs: &[String],
    nargs: usize,
    cx: &mut C,
    io: &mut StreamIo,
) -> Result<V, CcError> {
    let (k, v) = match &mut io.input {
        Input::Kvs(kvs) => {
            if io.cursor >= kvs.len() {
                return Ok(V::I(-1));
            }
            let p = kvs[io.cursor].clone();
            io.cursor += 1;
            p
        }
        Input::Lines(_) => return Err(CcError::interp("scanf on line input")),
    };
    {
        let stats = cx.stats();
        stats.records_in += 1;
        stats.mem += (k.len() + v.len()) as u64;
    }
    let fields = [k, v];
    let mut matched = 0i64;
    for (ci, conv) in convs.iter().enumerate().take(nargs.saturating_sub(1)) {
        let dst = cx.next(io)?;
        let field = &fields[ci.min(1)];
        let text = String::from_utf8_lossy(field).to_string();
        match conv.as_str() {
            "%s" => {
                cx.write_str(&dst, field)?;
            }
            "%d" | "%ld" | "%i" | "%u" => {
                let n = text.trim().parse::<i64>().unwrap_or(0);
                cx.store(&dst, V::I(n))?;
            }
            "%f" | "%lf" | "%g" | "%e" => {
                let x = text.trim().parse::<f64>().unwrap_or(0.0);
                cx.store(&dst, V::F(x))?;
            }
            other => {
                return Err(CcError::interp(format!(
                    "scanf: unsupported conversion {other}"
                )))
            }
        }
        matched += 1;
    }
    Ok(V::I(matched))
}

/// `strfind` core: index of `needle` in `hay`, or `-1` (empty needle
/// matches at 0).
pub(crate) fn str_find(hay: &[u8], needle: &[u8]) -> i64 {
    if needle.is_empty() {
        0
    } else {
        hay.windows(needle.len())
            .position(|w| w == needle)
            .map(|p| p as i64)
            .unwrap_or(-1)
    }
}

/// Apply a one-argument special function by name.
pub(crate) fn sfu1(name: &str, x: f64) -> f64 {
    match name {
        "sqrt" => x.sqrt(),
        "exp" => x.exp(),
        "log" => x.ln(),
        "fabs" => x.abs(),
        "floor" => x.floor(),
        "ceil" => x.ceil(),
        "erf" => erf(x),
        _ => unreachable!("not a 1-arg SFU: {name}"),
    }
}

/// Minimum argument count each builtin needs before it can be
/// dispatched. Calls with fewer arguments fail with a uniform error in
/// *both* backends (historically some indexed `args[0]` and panicked).
/// Returns `None` for names that are not builtins.
pub(crate) fn builtin_min_args(name: &str) -> Option<usize> {
    Some(match name {
        "getline" => 1,
        "getWord" | "getTok" => 5,
        "strfind" | "strcmp" | "strcpy" | "pow" | "calloc" => 2,
        "printf" | "scanf" | "strlen" | "atoi" | "atof" | "malloc" | "abs" => 1,
        "sqrt" | "exp" | "log" | "fabs" | "floor" | "ceil" | "erf" => 1,
        "free" => 0,
        _ => return None,
    })
}

/// The uniform too-few-arguments error for builtins.
pub(crate) fn builtin_arity_err(name: &str, need: usize, got: usize) -> CcError {
    CcError::interp(format!(
        "{name}: expected at least {need} argument(s), got {got}"
    ))
}

// ====================================================================
// The tree-walking interpreter.
// ====================================================================

/// Interpreter over one program.
pub struct Interp<'p> {
    prog: &'p Program,
    heap: Vec<Buffer>,
    slots: Vec<V>,
    /// Per-call-frame scopes: name -> slot, plus array strides for 2-D
    /// indexing (slot var name -> row length).
    scopes: Vec<Vec<HashMap<String, usize>>>,
    strides: HashMap<usize, usize>,
    /// Slots bound to declared arrays (these decay under `&`, pointers
    /// do not).
    array_slots: std::collections::HashSet<usize>,
    stats: InterpStats,
    steps: u64,
    max_steps: u64,
}

impl<'p> Interp<'p> {
    /// Create an interpreter for `prog`.
    pub fn new(prog: &'p Program) -> Self {
        Interp {
            prog,
            heap: Vec::new(),
            slots: Vec::new(),
            scopes: Vec::new(),
            strides: HashMap::new(),
            array_slots: std::collections::HashSet::new(),
            stats: InterpStats::default(),
            steps: 0,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Cap on evaluation steps (guards against runaway loops in user
    /// sources).
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Run `main` to completion against the given streaming I/O.
    pub fn run_main(mut self, io: &mut StreamIo) -> Result<InterpStats, CcError> {
        let main = self
            .prog
            .func("main")
            .ok_or_else(|| CcError::interp("no main function"))?;
        self.call_func(main, Vec::new(), io)?;
        Ok(self.stats)
    }

    fn tick(&mut self) -> Result<(), CcError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(CcError::interp("step limit exceeded (infinite loop?)"));
        }
        Ok(())
    }

    fn call_func(&mut self, f: &'p FuncDef, args: Vec<V>, io: &mut StreamIo) -> Result<V, CcError> {
        if args.len() != f.params.len() {
            return Err(CcError::interp(format!(
                "function {} expects {} args, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        self.scopes.push(vec![HashMap::new()]);
        for ((_, name), v) in f.params.iter().zip(args) {
            let slot = self.new_slot(v);
            self.bind(name, slot);
        }
        let mut ret = V::I(0);
        for s in &f.body {
            match self.exec(s, io)? {
                Flow::Return(v) => {
                    ret = v;
                    break;
                }
                Flow::Normal => {}
                _ => return Err(CcError::interp("break/continue outside loop")),
            }
        }
        self.scopes.pop();
        Ok(ret)
    }

    fn new_slot(&mut self, v: V) -> usize {
        self.slots.push(v);
        self.slots.len() - 1
    }

    fn bind(&mut self, name: &str, slot: usize) {
        self.scopes
            .last_mut()
            .unwrap()
            .last_mut()
            .unwrap()
            .insert(name.to_string(), slot);
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        let frame = self.scopes.last()?;
        frame.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn exec(&mut self, s: &'p Stmt, io: &mut StreamIo) -> Result<Flow, CcError> {
        self.tick()?;
        match &s.kind {
            StmtKind::Decl(ds) => {
                for d in ds {
                    let v = self.declare(d, io)?;
                    let slot = self.new_slot(v);
                    self.bind(&d.name, slot);
                    if d.ty.is_array() {
                        self.array_slots.insert(slot);
                    }
                    if let CType::Array(inner, _) = &d.ty {
                        if let CType::Array(_, Some(cols)) = inner.as_ref() {
                            self.strides.insert(slot, *cols);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e, io)?;
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.tick()?;
                    if !truthy(&self.eval(cond, io)?) {
                        break;
                    }
                    match self.exec(body, io)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(i) = init {
                    self.exec(i, io)?;
                }
                loop {
                    self.tick()?;
                    if let Some(c) = cond {
                        if !truthy(&self.eval(c, io)?) {
                            break;
                        }
                    }
                    match self.exec(body, io)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            self.pop_scope();
                            return Ok(Flow::Return(v));
                        }
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st, io)?;
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if truthy(&self.eval(cond, io)?) {
                    self.exec(then, io)
                } else if let Some(e) = els {
                    self.exec(e, io)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(x) => self.eval(x, io)?,
                    None => V::I(0),
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(body) => {
                self.push_scope();
                for st in body {
                    match self.exec(st, io)? {
                        Flow::Normal => {}
                        f => {
                            self.pop_scope();
                            return Ok(f);
                        }
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            StmtKind::Annotated(_, inner) => self.exec(inner, io),
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    fn push_scope(&mut self) {
        self.scopes.last_mut().unwrap().push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.last_mut().unwrap().pop();
    }

    fn declare(&mut self, d: &'p Declarator, io: &mut StreamIo) -> Result<V, CcError> {
        match &d.ty {
            CType::Array(inner, n) => {
                let total = match inner.as_ref() {
                    CType::Array(_, Some(cols)) => n.unwrap_or(1) * cols,
                    _ => {
                        n.ok_or_else(|| CcError::interp(format!("array {} needs a size", d.name)))?
                    }
                };
                let elem = leaf_type(&d.ty);
                let buf = alloc_buffer(&mut self.heap, &elem, total);
                Ok(V::Ptr { buf, off: 0 })
            }
            _ => match &d.init {
                Some(e) => self.eval(e, io),
                None => Ok(default_value(&d.ty)),
            },
        }
    }

    fn eval(&mut self, e: &'p Expr, io: &mut StreamIo) -> Result<V, CcError> {
        self.tick()?;
        self.stats.ops += 1;
        match e {
            Expr::IntLit(v) => Ok(V::I(*v)),
            Expr::FloatLit(v) => Ok(V::F(*v)),
            Expr::CharLit(c) => Ok(V::I(*c as i64)),
            Expr::StrLit(s) => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                self.heap.push(Buffer::Bytes(bytes));
                Ok(V::Ptr {
                    buf: self.heap.len() - 1,
                    off: 0,
                })
            }
            Expr::Ident(name) => {
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| CcError::interp(format!("unknown variable {name}")))?;
                Ok(self.slots[slot].clone())
            }
            Expr::Unary(op, x) => self.eval_unary(*op, x, io),
            Expr::PostInc(x) => {
                let old = self.eval(x, io)?;
                let new = num_add(&old, 1)?;
                self.assign_to(x, new, io)?;
                Ok(old)
            }
            Expr::PostDec(x) => {
                let old = self.eval(x, io)?;
                let new = num_add(&old, -1)?;
                self.assign_to(x, new, io)?;
                Ok(old)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, io)?;
                if *op == BinOp::And {
                    if !truthy(&va) {
                        return Ok(V::I(0));
                    }
                    let vb = self.eval(b, io)?;
                    return Ok(V::I(truthy(&vb) as i64));
                }
                if *op == BinOp::Or {
                    if truthy(&va) {
                        return Ok(V::I(1));
                    }
                    let vb = self.eval(b, io)?;
                    return Ok(V::I(truthy(&vb) as i64));
                }
                let vb = self.eval(b, io)?;
                binary(*op, va, vb)
            }
            Expr::Assign(op, lhs, rhs) => {
                let rv = self.eval(rhs, io)?;
                let nv = if *op == AssignOp::None {
                    rv
                } else {
                    let old = self.eval(lhs, io)?;
                    let bop = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Rem => BinOp::Rem,
                        AssignOp::None => unreachable!(),
                    };
                    binary(bop, old, rv)?
                };
                self.assign_to(lhs, nv.clone(), io)?;
                Ok(nv)
            }
            Expr::Cond(c, t, f) => {
                if truthy(&self.eval(c, io)?) {
                    self.eval(t, io)
                } else {
                    self.eval(f, io)
                }
            }
            Expr::Call(name, args) => self.call(name, args, io),
            Expr::Index(base, idx) => {
                let (buf, off) = self.index_target(base, idx, io)?;
                self.stats.mem += 1;
                read_buf(&self.heap, buf, off)
            }
            Expr::Cast(ty, x) => {
                let v = self.eval(x, io)?;
                Ok(cast(&v, ty))
            }
            Expr::SizeOf(ty) => Ok(V::I(ty.scalar_size() as i64)),
        }
    }

    fn eval_unary(&mut self, op: UnOp, x: &'p Expr, io: &mut StreamIo) -> Result<V, CcError> {
        match op {
            UnOp::AddrOf => match x {
                Expr::Ident(name) => {
                    let slot = self
                        .lookup(name)
                        .ok_or_else(|| CcError::interp(format!("unknown variable {name}")))?;
                    // Address of an array variable is the array itself;
                    // address of a scalar or pointer variable is a slot
                    // reference (so getline(&line, ...) can replace the
                    // pointer).
                    if self.array_slots.contains(&slot) {
                        Ok(self.slots[slot].clone())
                    } else {
                        Ok(V::SlotRef(slot))
                    }
                }
                Expr::Index(base, idx) => {
                    let (buf, off) = self.index_target(base, idx, io)?;
                    Ok(V::Ptr { buf, off })
                }
                _ => Err(CcError::interp("unsupported address-of target")),
            },
            UnOp::Deref => {
                let v = self.eval(x, io)?;
                match v {
                    V::Ptr { buf, off } => {
                        self.stats.mem += 1;
                        read_buf(&self.heap, buf, off)
                    }
                    V::SlotRef(s) => Ok(self.slots[s].clone()),
                    _ => Err(CcError::interp("dereference of non-pointer")),
                }
            }
            UnOp::Neg => match self.eval(x, io)? {
                V::I(v) => Ok(V::I(v.wrapping_neg())),
                V::F(v) => Ok(V::F(-v)),
                _ => Err(CcError::interp("negate non-number")),
            },
            UnOp::Not => Ok(V::I(!truthy(&self.eval(x, io)?) as i64)),
            UnOp::BitNot => match self.eval(x, io)? {
                V::I(v) => Ok(V::I(!v)),
                _ => Err(CcError::interp("~ on non-int")),
            },
            UnOp::PreInc => {
                let v = num_add(&self.eval(x, io)?, 1)?;
                self.assign_to(x, v.clone(), io)?;
                Ok(v)
            }
            UnOp::PreDec => {
                let v = num_add(&self.eval(x, io)?, -1)?;
                self.assign_to(x, v.clone(), io)?;
                Ok(v)
            }
        }
    }

    /// Resolve `base[idx]` (including 2-D `a[i][j]`) to a buffer slot.
    fn index_target(
        &mut self,
        base: &'p Expr,
        idx: &'p Expr,
        io: &mut StreamIo,
    ) -> Result<(usize, usize), CcError> {
        let i = as_int(&self.eval(idx, io)?)? as isize;
        // 2-D: base is itself an Index over a strided variable.
        if let Expr::Index(inner_base, inner_idx) = base {
            if let Expr::Ident(name) = inner_base.as_ref() {
                if let Some(slot) = self.lookup(name) {
                    if let Some(&stride) = self.strides.get(&slot) {
                        let row = as_int(&self.eval(inner_idx, io)?)? as isize;
                        if let V::Ptr { buf, off } = self.slots[slot].clone() {
                            let pos = off as isize + row * stride as isize + i;
                            return check_bounds(&self.heap, buf, pos);
                        }
                    }
                }
            }
        }
        let b = self.eval(base, io)?;
        match b {
            V::Ptr { buf, off } => {
                let pos = off as isize + i;
                check_bounds(&self.heap, buf, pos)
            }
            _ => Err(CcError::interp("indexing non-pointer")),
        }
    }

    fn assign_to(&mut self, lhs: &'p Expr, v: V, io: &mut StreamIo) -> Result<(), CcError> {
        match lhs {
            Expr::Ident(name) => {
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| CcError::interp(format!("unknown variable {name}")))?;
                self.slots[slot] = v;
                Ok(())
            }
            Expr::Index(base, idx) => {
                let (buf, off) = self.index_target(base, idx, io)?;
                write_buf(&mut self.heap, &mut self.stats, buf, off, &v)
            }
            Expr::Unary(UnOp::Deref, x) => {
                let target = self.eval(x, io)?;
                match target {
                    V::Ptr { buf, off } => write_buf(&mut self.heap, &mut self.stats, buf, off, &v),
                    V::SlotRef(s) => {
                        self.slots[s] = v;
                        Ok(())
                    }
                    _ => Err(CcError::interp("store through non-pointer")),
                }
            }
            Expr::Cast(_, inner) => self.assign_to(inner, v, io),
            _ => Err(CcError::interp("unsupported assignment target")),
        }
    }

    // ---- builtins ----

    fn call(&mut self, name: &str, args: &'p [Expr], io: &mut StreamIo) -> Result<V, CcError> {
        // User-defined functions first.
        if let Some(_f) = self.prog.func(name) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a, io)?);
            }
            // Look up again to appease the borrow checker via index.
            let f = self.prog.func(name).unwrap();
            return self.call_func(f, vals, io);
        }
        if let Some(need) = builtin_min_args(name) {
            if args.len() < need {
                return Err(builtin_arity_err(name, need, args.len()));
            }
        }
        match name {
            "getline" => self.builtin_getline(args, io),
            "getWord" => self.builtin_scan_token(args, io, true),
            "getTok" => self.builtin_scan_token(args, io, false),
            "strfind" => {
                let h = self.eval(&args[0], io)?;
                let n = self.eval(&args[1], io)?;
                let hay = cstr(&self.heap, &h)?;
                let needle = cstr(&self.heap, &n)?;
                self.stats.mem += (hay.len() + needle.len()) as u64;
                Ok(V::I(str_find(&hay, &needle)))
            }
            "printf" => self.builtin_printf(args, io),
            "scanf" => self.builtin_scanf(args, io),
            "strcmp" => {
                let a = self.eval(&args[0], io)?;
                let b = self.eval(&args[1], io)?;
                let sa = cstr(&self.heap, &a)?;
                let sb = cstr(&self.heap, &b)?;
                self.stats.mem += (sa.len() + sb.len()) as u64;
                Ok(V::I(match sa.cmp(&sb) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "strcpy" => {
                let dst = self.eval(&args[0], io)?;
                let src = self.eval(&args[1], io)?;
                let s = cstr(&self.heap, &src)?;
                self.stats.mem += s.len() as u64;
                write_cstr(&mut self.heap, &mut self.stats, &dst, &s)?;
                Ok(dst)
            }
            "strlen" => {
                let p = self.eval(&args[0], io)?;
                let s = cstr(&self.heap, &p)?;
                Ok(V::I(s.len() as i64))
            }
            "atoi" => {
                let p = self.eval(&args[0], io)?;
                let s = cstr(&self.heap, &p)?;
                let txt = String::from_utf8_lossy(&s);
                Ok(V::I(txt.trim().parse::<i64>().unwrap_or(0)))
            }
            "atof" => {
                let p = self.eval(&args[0], io)?;
                let s = cstr(&self.heap, &p)?;
                let txt = String::from_utf8_lossy(&s);
                Ok(V::F(txt.trim().parse::<f64>().unwrap_or(0.0)))
            }
            "sqrt" | "exp" | "log" | "fabs" | "floor" | "ceil" | "erf" => {
                self.stats.sfu += 1;
                let x = as_f64(&self.eval(&args[0], io)?)?;
                Ok(V::F(sfu1(name, x)))
            }
            "pow" => {
                self.stats.sfu += 1;
                let a = as_f64(&self.eval(&args[0], io)?)?;
                let b = as_f64(&self.eval(&args[1], io)?)?;
                Ok(V::F(a.powf(b)))
            }
            "malloc" | "calloc" => {
                let n = as_int(&self.eval(&args[0], io)?)? as usize;
                let n = if name == "calloc" {
                    n * as_int(&self.eval(&args[1], io)?)? as usize
                } else {
                    n
                };
                self.heap.push(Buffer::Bytes(vec![0; n.max(1)]));
                Ok(V::Ptr {
                    buf: self.heap.len() - 1,
                    off: 0,
                })
            }
            "free" => {
                for a in args {
                    self.eval(a, io)?;
                }
                Ok(V::I(0))
            }
            "abs" => {
                let v = as_int(&self.eval(&args[0], io)?)?;
                Ok(V::I(v.wrapping_abs()))
            }
            _ => Err(CcError::interp(format!("unknown function {name}"))),
        }
    }

    fn builtin_getline(&mut self, args: &'p [Expr], io: &mut StreamIo) -> Result<V, CcError> {
        // getline(&line, &nbytes, stdin) -> bytes read incl. '\n', or -1.
        let Some((ptr, len)) = getline_read(io, &mut self.heap, &mut self.stats)? else {
            return Ok(V::I(-1));
        };
        // Store the new buffer through the first argument (&line).
        let target = self.eval(&args[0], io)?;
        getline_store(&mut self.slots, target, ptr)?;
        Ok(V::I(len))
    }

    fn builtin_scan_token(
        &mut self,
        args: &'p [Expr],
        io: &mut StreamIo,
        word_mode: bool,
    ) -> Result<V, CcError> {
        // getWord/getTok(line, offset, word, read, maxLen) -> chars
        // consumed or -1.
        let line = self.eval(&args[0], io)?;
        let offset = as_int(&self.eval(&args[1], io)?)?;
        let word = self.eval(&args[2], io)?;
        let read = as_int(&self.eval(&args[3], io)?)?;
        let max_len = as_int(&self.eval(&args[4], io)?)?;
        scan_token(
            &mut self.heap,
            &mut self.stats,
            &line,
            offset,
            &word,
            read,
            max_len,
            word_mode,
        )
        .map(V::I)
    }

    fn builtin_printf(&mut self, args: &'p [Expr], io: &mut StreamIo) -> Result<V, CcError> {
        let fmt = match &args[0] {
            Expr::StrLit(s) => s.clone(),
            _ => return Err(CcError::interp("printf needs a literal format")),
        };
        let segs = parse_printf(&fmt);
        struct Cx<'a, 'p> {
            it: &'a mut Interp<'p>,
            args: &'p [Expr],
            idx: usize,
        }
        impl PrintfCx for Cx<'_, '_> {
            fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError> {
                let a = self
                    .args
                    .get(self.idx)
                    .ok_or_else(|| CcError::interp("printf: not enough arguments"))?;
                self.idx += 1;
                self.it.eval(a, io)
            }
            fn str_of(&self, p: &V) -> Result<Vec<u8>, CcError> {
                cstr(&self.it.heap, p)
            }
            fn stats(&mut self) -> &mut InterpStats {
                &mut self.it.stats
            }
        }
        let mut cx = Cx {
            it: self,
            args,
            idx: 1,
        };
        render_printf(&segs, &mut cx, io)
    }

    fn builtin_scanf(&mut self, args: &'p [Expr], io: &mut StreamIo) -> Result<V, CcError> {
        // scanf("<kfmt> <vfmt>", kdst, vdst): reads the next KV pair.
        let fmt = match &args[0] {
            Expr::StrLit(s) => s.clone(),
            _ => return Err(CcError::interp("scanf needs a literal format")),
        };
        let convs = parse_scanf(&fmt);
        struct Cx<'a, 'p> {
            it: &'a mut Interp<'p>,
            args: &'p [Expr],
            idx: usize,
        }
        impl ScanfCx for Cx<'_, '_> {
            fn next(&mut self, io: &mut StreamIo) -> Result<V, CcError> {
                let a = &self.args[self.idx];
                self.idx += 1;
                self.it.eval(a, io)
            }
            fn write_str(&mut self, dst: &V, s: &[u8]) -> Result<(), CcError> {
                write_cstr(&mut self.it.heap, &mut self.it.stats, dst, s)
            }
            fn store(&mut self, dst: &V, v: V) -> Result<(), CcError> {
                store_through(
                    &mut self.it.heap,
                    &mut self.it.slots,
                    &mut self.it.stats,
                    dst,
                    v,
                )
            }
            fn stats(&mut self) -> &mut InterpStats {
                &mut self.it.stats
            }
        }
        let mut cx = Cx {
            it: self,
            args,
            idx: 1,
        };
        run_scanf(&convs, args.len(), &mut cx, io)
    }
}

pub(crate) fn leaf_type(t: &CType) -> CType {
    match t {
        CType::Array(inner, _) | CType::Ptr(inner) => leaf_type(inner),
        other => other.clone(),
    }
}

pub(crate) fn default_value(t: &CType) -> V {
    match t {
        CType::Float | CType::Double => V::F(0.0),
        CType::Ptr(_) => V::Null,
        _ => V::I(0),
    }
}

pub(crate) fn truthy(v: &V) -> bool {
    match v {
        V::I(x) => *x != 0,
        V::F(x) => *x != 0.0,
        V::Ptr { .. } | V::SlotRef(_) => true,
        V::Null => false,
    }
}

pub(crate) fn as_int(v: &V) -> Result<i64, CcError> {
    match v {
        V::I(x) => Ok(*x),
        V::F(x) => Ok(*x as i64),
        _ => Err(CcError::interp("expected integer value")),
    }
}

pub(crate) fn as_f64(v: &V) -> Result<f64, CcError> {
    match v {
        V::I(x) => Ok(*x as f64),
        V::F(x) => Ok(*x),
        _ => Err(CcError::interp("expected numeric value")),
    }
}

pub(crate) fn num_add(v: &V, d: i64) -> Result<V, CcError> {
    match v {
        V::I(x) => Ok(V::I(x.wrapping_add(d))),
        V::F(x) => Ok(V::F(x + d as f64)),
        V::Ptr { buf, off } => Ok(V::Ptr {
            buf: *buf,
            off: (*off as i64).wrapping_add(d) as usize,
        }),
        _ => Err(CcError::interp("++/-- on non-number")),
    }
}

pub(crate) fn binary(op: BinOp, a: V, b: V) -> Result<V, CcError> {
    binary_impl::<true>(op, a, b)
}

/// [`binary`] with the integer div/mod zero guard elided. Only for
/// sites the value analysis proved never see a zero denominator; if
/// such a proof were ever wrong, `wrapping_div`/`wrapping_rem` panic
/// (Rust's own zero check) instead of corrupting state. The guard
/// charges no [`InterpStats`], so eliding it cannot perturb simulated
/// cost.
pub(crate) fn binary_unchecked(op: BinOp, a: V, b: V) -> Result<V, CcError> {
    binary_impl::<false>(op, a, b)
}

fn binary_impl<const CHECK_DIV: bool>(op: BinOp, a: V, b: V) -> Result<V, CcError> {
    use BinOp::*;
    // Pointer arithmetic.
    if let (V::Ptr { buf, off }, V::I(i)) = (&a, &b) {
        match op {
            Add => {
                return Ok(V::Ptr {
                    buf: *buf,
                    off: (*off as i64).wrapping_add(*i) as usize,
                })
            }
            Sub => {
                return Ok(V::Ptr {
                    buf: *buf,
                    off: (*off as i64).wrapping_sub(*i) as usize,
                })
            }
            _ => {}
        }
    }
    let float = matches!(a, V::F(_)) || matches!(b, V::F(_));
    if float {
        let x = as_f64(&a)?;
        let y = as_f64(&b)?;
        return Ok(match op {
            Add => V::F(x + y),
            Sub => V::F(x - y),
            Mul => V::F(x * y),
            Div => V::F(x / y),
            Rem => V::F(x % y),
            Lt => V::I((x < y) as i64),
            Le => V::I((x <= y) as i64),
            Gt => V::I((x > y) as i64),
            Ge => V::I((x >= y) as i64),
            Eq => V::I((x == y) as i64),
            Ne => V::I((x != y) as i64),
            _ => return Err(CcError::interp("bitwise op on float")),
        });
    }
    let x = as_int(&a)?;
    let y = as_int(&b)?;
    Ok(match op {
        Add => V::I(x.wrapping_add(y)),
        Sub => V::I(x.wrapping_sub(y)),
        Mul => V::I(x.wrapping_mul(y)),
        Div => {
            if CHECK_DIV && y == 0 {
                return Err(CcError::interp("integer division by zero"));
            }
            V::I(x.wrapping_div(y))
        }
        Rem => {
            if CHECK_DIV && y == 0 {
                return Err(CcError::interp("integer remainder by zero"));
            }
            V::I(x.wrapping_rem(y))
        }
        Lt => V::I((x < y) as i64),
        Le => V::I((x <= y) as i64),
        Gt => V::I((x > y) as i64),
        Ge => V::I((x >= y) as i64),
        Eq => V::I((x == y) as i64),
        Ne => V::I((x != y) as i64),
        BitAnd => V::I(x & y),
        BitOr => V::I(x | y),
        BitXor => V::I(x ^ y),
        Shl => V::I(x << (y & 63)),
        Shr => V::I(x >> (y & 63)),
        And | Or => unreachable!("handled short-circuit"),
    })
}

pub(crate) fn cast(v: &V, ty: &CType) -> V {
    match ty {
        CType::Float | CType::Double => match v {
            V::I(x) => V::F(*x as f64),
            other => other.clone(),
        },
        CType::Int | CType::Char => match v {
            V::F(x) => V::I(*x as i64),
            other => other.clone(),
        },
        _ => v.clone(),
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26); used by the
/// BlackScholes benchmark's normal CDF.
pub(crate) fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn run_lines(src: &str, lines: &[&str]) -> (Vec<(String, String)>, InterpStats) {
        let prog = parse(src).unwrap();
        let mut io = StreamIo::lines(lines.iter().map(|l| l.as_bytes().to_vec()).collect());
        let stats = Interp::new(&prog).run_main(&mut io).unwrap();
        let kvs = io
            .emitted_kvs()
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(&k).to_string(),
                    String::from_utf8_lossy(&v).to_string(),
                )
            })
            .collect();
        (kvs, stats)
    }

    const WORDCOUNT_MAP: &str = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) \
    keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;

    #[test]
    fn wordcount_mapper_runs_paper_listing_1() {
        let (kvs, stats) = run_lines(WORDCOUNT_MAP, &["the quick brown fox", "the lazy dog"]);
        let expect = [
            ("the", "1"),
            ("quick", "1"),
            ("brown", "1"),
            ("fox", "1"),
            ("the", "1"),
            ("lazy", "1"),
            ("dog", "1"),
        ];
        assert_eq!(
            kvs,
            expect
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect::<Vec<_>>()
        );
        assert_eq!(stats.records_in, 2);
        assert_eq!(stats.lines_out, 7);
    }

    const WORDCOUNT_COMBINE: &str = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) {
        count += val;
      } else {
        if(prevWord[0] != '\0')
          printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0')
      printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;

    #[test]
    fn wordcount_combiner_runs_paper_listing_2() {
        let prog = parse(WORDCOUNT_COMBINE).unwrap();
        let kvs: Vec<(Vec<u8>, Vec<u8>)> =
            [("a", "1"), ("a", "1"), ("b", "1"), ("c", "2"), ("c", "3")]
                .iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                .collect();
        let mut io = StreamIo::kvs(kvs);
        Interp::new(&prog).run_main(&mut io).unwrap();
        let out = io.emitted_kvs();
        let got: Vec<(String, String)> = out
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(&k).to_string(),
                    String::from_utf8_lossy(&v).to_string(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".to_string(), "2".to_string()),
                ("b".to_string(), "1".to_string()),
                ("c".to_string(), "5".to_string())
            ]
        );
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
int main() {
  int i, s; s = 0;
  for (i = 1; i <= 10; i++) {
    if (i % 2 == 0) { s += i; } else { continue; }
  }
  printf("sum\t%d\n", s);
  return 0;
}
"#;
        let (kvs, _) = run_lines(src, &[]);
        assert_eq!(kvs, vec![("sum".to_string(), "30".to_string())]);
    }

    #[test]
    fn user_functions_and_math() {
        let src = r#"
double sq(double x) { return x * x; }
int main() {
  double d;
  d = sqrt(sq(3.0) + sq(4.0));
  printf("d\t%.2f\n", d);
  return 0;
}
"#;
        let (kvs, stats) = run_lines(src, &[]);
        assert_eq!(kvs, vec![("d".to_string(), "5.00".to_string())]);
        assert!(stats.sfu >= 1);
    }

    #[test]
    fn arrays_and_two_dims() {
        let src = r#"
int main() {
  int h[5]; int i;
  double m[2][3];
  for (i = 0; i < 5; i++) h[i] = i * i;
  m[1][2] = 7.5;
  printf("h3\t%d\n", h[3]);
  printf("m12\t%.1f\n", m[1][2]);
  return 0;
}
"#;
        let (kvs, _) = run_lines(src, &[]);
        assert_eq!(kvs[0], ("h3".to_string(), "9".to_string()));
        assert_eq!(kvs[1], ("m12".to_string(), "7.5".to_string()));
    }

    #[test]
    fn string_builtins() {
        let src = r#"
int main() {
  char a[16], b[16];
  strcpy(a, "hello");
  strcpy(b, a);
  printf("cmp\t%d\n", strcmp(a, b));
  printf("len\t%d\n", strlen(a));
  printf("n\t%d\n", atoi("42"));
  return 0;
}
"#;
        let (kvs, _) = run_lines(src, &[]);
        assert_eq!(kvs[0].1, "0");
        assert_eq!(kvs[1].1, "5");
        assert_eq!(kvs[2].1, "42");
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let src = "int main() { int a[3]; a[5] = 1; return 0; }";
        let prog = parse(src).unwrap();
        let mut io = StreamIo::lines(vec![]);
        let e = Interp::new(&prog).run_main(&mut io);
        assert!(matches!(e, Err(CcError::Interp(_))));
    }

    #[test]
    fn infinite_loop_is_caught() {
        let src = "int main() { while (1) { } return 0; }";
        let prog = parse(src).unwrap();
        let mut io = StreamIo::lines(vec![]);
        let e = Interp::new(&prog).with_max_steps(10_000).run_main(&mut io);
        assert!(matches!(e, Err(CcError::Interp(_))));
    }

    #[test]
    fn division_by_zero_is_caught() {
        let src = "int main() { int a; a = 1 / 0; return 0; }";
        let prog = parse(src).unwrap();
        let mut io = StreamIo::lines(vec![]);
        assert!(Interp::new(&prog).run_main(&mut io).is_err());
    }

    #[test]
    fn builtin_with_too_few_args_errors_instead_of_panicking() {
        for src in [
            "int main() { getline(); return 0; }",
            "int main() { strcmp(\"a\"); return 0; }",
            "int main() { pow(2.0); return 0; }",
        ] {
            let prog = parse(src).unwrap();
            let mut io = StreamIo::lines(vec![]);
            let e = Interp::new(&prog).run_main(&mut io);
            assert!(
                matches!(e, Err(CcError::Interp(_))),
                "{src} should error cleanly"
            );
        }
    }

    #[test]
    fn scanf_float_values() {
        let src = r#"
int main() {
  char k[30]; double v; double s; s = 0.0;
  while (scanf("%s %lf", k, &v) == 2) { s += v; }
  printf("sum\t%.3f\n", s);
  return 0;
}
"#;
        let prog = parse(src).unwrap();
        let kvs = vec![
            (b"x".to_vec(), b"1.5".to_vec()),
            (b"y".to_vec(), b"2.25".to_vec()),
        ];
        let mut io = StreamIo::kvs(kvs);
        Interp::new(&prog).run_main(&mut io).unwrap();
        assert_eq!(io.emitted_kvs()[0].1, b"3.750".to_vec());
    }

    #[test]
    fn erf_matches_reference_points() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 0.99998).abs() < 1e-4);
    }

    #[test]
    fn stats_count_work() {
        let (_, stats) = run_lines(WORDCOUNT_MAP, &["a b c", "d e"]);
        assert!(stats.ops > 20);
        assert!(stats.mem > 5);
        assert_eq!(stats.records_in, 2);
    }

    #[test]
    fn printf_parse_covers_corners() {
        // "%.3" truncated at end renders as a lone '%'.
        let segs = parse_printf("x%.3");
        assert!(matches!(&segs[..], [PSeg::Lit(s)] if s == "x%"));
        // "%%" is a literal percent, no argument consumed.
        let segs = parse_printf("a%%b");
        assert!(matches!(&segs[..], [PSeg::Lit(s)] if s == "a%b"));
        // Trailing lone '%' is literal.
        let segs = parse_printf("ab%");
        assert!(matches!(&segs[..], [PSeg::Lit(s)] if s == "ab%"));
    }
}
