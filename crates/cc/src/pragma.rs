//! Parsing and validation of `#pragma mapreduce` directives — the full
//! clause set of the paper's Table 1.

use crate::error::{CcError, Span};

/// Which MapReduce role the annotated region implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// The attached region performs the map operation.
    Mapper,
    /// The attached region performs the combine operation.
    Combiner,
}

/// A parsed `#pragma mapreduce` directive (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// `mapper` or `combiner`.
    pub kind: DirectiveKind,
    /// Variable containing the emitted key (`key` clause).
    pub key: String,
    /// Variable containing the emitted value (`value` clause).
    pub value: String,
    /// Variable receiving the incoming key (`keyin`, combiner only).
    pub keyin: Option<String>,
    /// Variable receiving the incoming value (`valuein`, combiner only).
    pub valuein: Option<String>,
    /// Length of the emitted key in bytes (`keylength`). Required when
    /// the key variable's type is not compiler-derivable.
    pub keylength: Option<usize>,
    /// Length of the emitted value in bytes (`vallength`).
    pub vallength: Option<usize>,
    /// Variables initialized before the region (`firstprivate`).
    pub firstprivate: Vec<String>,
    /// Read-only shared variables (`sharedRO`, optional).
    pub shared_ro: Vec<String>,
    /// Read-only variables forced into texture memory (`texture`,
    /// optional).
    pub texture: Vec<String>,
    /// Maximum KV pairs emitted per record (`kvpairs`, optional, mapper
    /// only).
    pub kvpairs: Option<usize>,
    /// Number of threadblocks (`blocks` clause, optional).
    pub blocks: Option<u32>,
    /// Threads per threadblock (`threads` clause, optional).
    pub threads: Option<u32>,
    /// Location of the pragma in the source (whole logical line).
    pub span: Span,
}

/// Parse the text after `#pragma` (e.g. `mapreduce mapper key(word) ...`).
/// Returns `Ok(None)` for pragmas that are not `mapreduce` (they are
/// someone else's and ignored, as a real compiler would).
pub fn parse_pragma(text: &str, span: impl Into<Span>) -> Result<Option<Directive>, CcError> {
    let span = span.into();
    let mut toks = ClauseLexer::new(text, span);
    let first = match toks.next_word()? {
        Some(w) => w,
        None => return Ok(None),
    };
    if first != "mapreduce" {
        return Ok(None);
    }
    let kind = match toks.next_word()? {
        Some(w) if w == "mapper" => DirectiveKind::Mapper,
        Some(w) if w == "combiner" => DirectiveKind::Combiner,
        Some(w) => {
            return Err(CcError::directive(
                span,
                format!("expected 'mapper' or 'combiner', found '{w}'"),
            ))
        }
        None => {
            return Err(CcError::directive(
                span,
                "mapreduce pragma needs 'mapper' or 'combiner'",
            ))
        }
    };

    let mut d = Directive {
        kind,
        key: String::new(),
        value: String::new(),
        keyin: None,
        valuein: None,
        keylength: None,
        vallength: None,
        firstprivate: Vec::new(),
        shared_ro: Vec::new(),
        texture: Vec::new(),
        kvpairs: None,
        blocks: None,
        threads: None,
        span,
    };

    while let Some(clause) = toks.next_word()? {
        let args = toks.paren_args()?;
        let need_one = |args: &[String]| -> Result<String, CcError> {
            if args.len() != 1 {
                Err(CcError::directive(
                    span,
                    format!("clause '{clause}' takes exactly one argument"),
                ))
            } else {
                Ok(args[0].clone())
            }
        };
        let need_int = |args: &[String]| -> Result<usize, CcError> {
            need_one(args)?.parse::<usize>().map_err(|_| {
                CcError::directive(span, format!("clause '{clause}' needs an integer argument"))
            })
        };
        match clause.as_str() {
            "key" => d.key = need_one(&args)?,
            "value" => d.value = need_one(&args)?,
            "keyin" => d.keyin = Some(need_one(&args)?),
            "valuein" => d.valuein = Some(need_one(&args)?),
            "keylength" => d.keylength = Some(need_int(&args)?),
            "vallength" => d.vallength = Some(need_int(&args)?),
            "firstprivate" => d.firstprivate.extend(args),
            "sharedRO" => d.shared_ro.extend(args),
            "texture" => d.texture.extend(args),
            "kvpairs" => d.kvpairs = Some(need_int(&args)?),
            "blocks" => d.blocks = Some(need_int(&args)? as u32),
            "threads" => d.threads = Some(need_int(&args)? as u32),
            other => {
                return Err(CcError::directive(
                    span,
                    format!("unknown mapreduce clause '{other}'"),
                ))
            }
        }
    }
    validate(&d)?;
    Ok(Some(d))
}

fn validate(d: &Directive) -> Result<(), CcError> {
    let line = d.span;
    if d.key.is_empty() {
        return Err(CcError::directive(line, "missing required clause 'key'"));
    }
    if d.value.is_empty() {
        return Err(CcError::directive(line, "missing required clause 'value'"));
    }
    match d.kind {
        DirectiveKind::Mapper => {
            if d.keyin.is_some() || d.valuein.is_some() {
                return Err(CcError::directive(
                    line,
                    "'keyin'/'valuein' are valid only on the combiner",
                ));
            }
        }
        DirectiveKind::Combiner => {
            if d.keyin.is_none() || d.valuein.is_none() {
                return Err(CcError::directive(
                    line,
                    "combiner requires 'keyin' and 'valuein' clauses",
                ));
            }
            if d.kvpairs.is_some() {
                return Err(CcError::directive(
                    line,
                    "'kvpairs' is valid only on the mapper",
                ));
            }
        }
    }
    if d.blocks == Some(0) || d.threads == Some(0) {
        return Err(CcError::directive(
            line,
            "'blocks'/'threads' must be positive",
        ));
    }
    Ok(())
}

/// Tiny lexer for clause lists: words and parenthesized comma-separated
/// argument lists.
struct ClauseLexer<'a> {
    rest: &'a str,
    span: Span,
}

impl<'a> ClauseLexer<'a> {
    fn new(s: &'a str, span: Span) -> Self {
        ClauseLexer { rest: s, span }
    }

    fn next_word(&mut self) -> Result<Option<String>, CcError> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Ok(None);
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(CcError::directive(
                self.span,
                format!("unexpected character in pragma near '{}'", &self.rest[..1]),
            ));
        }
        let w = self.rest[..end].to_string();
        self.rest = &self.rest[end..];
        Ok(Some(w))
    }

    fn paren_args(&mut self) -> Result<Vec<String>, CcError> {
        self.rest = self.rest.trim_start();
        if !self.rest.starts_with('(') {
            return Err(CcError::directive(
                self.span,
                "mapreduce clause requires a parenthesized argument list",
            ));
        }
        let close = self
            .rest
            .find(')')
            .ok_or_else(|| CcError::directive(self.span, "unterminated clause argument list"))?;
        let inner = &self.rest[1..close];
        self.rest = &self.rest[close + 1..];
        Ok(inner
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Option<Directive>, CcError> {
        parse_pragma(text, 1u32)
    }

    #[test]
    fn listing1_mapper_pragma() {
        let d = parse("mapreduce mapper key(word) value(one) keylength(30) vallength(1)")
            .unwrap()
            .unwrap();
        assert_eq!(d.kind, DirectiveKind::Mapper);
        assert_eq!(d.key, "word");
        assert_eq!(d.value, "one");
        assert_eq!(d.keylength, Some(30));
        assert_eq!(d.vallength, Some(1));
    }

    #[test]
    fn listing2_combiner_pragma() {
        let d = parse(
            "mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) \
             keylength(30) vallength(1) firstprivate(prevWord, count)",
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.kind, DirectiveKind::Combiner);
        assert_eq!(d.keyin.as_deref(), Some("word"));
        assert_eq!(d.valuein.as_deref(), Some("val"));
        assert_eq!(d.firstprivate, vec!["prevWord", "count"]);
    }

    #[test]
    fn non_mapreduce_pragma_ignored() {
        assert_eq!(parse("omp parallel for").unwrap(), None);
        assert_eq!(parse("once").unwrap(), None);
    }

    #[test]
    fn mapper_rejects_keyin() {
        let e = parse("mapreduce mapper key(k) value(v) keyin(x) valuein(y)");
        assert!(matches!(e, Err(CcError::Directive { .. })));
    }

    #[test]
    fn combiner_requires_keyin_valuein() {
        let e = parse("mapreduce combiner key(k) value(v)");
        assert!(matches!(e, Err(CcError::Directive { .. })));
    }

    #[test]
    fn kvpairs_only_on_mapper() {
        let ok = parse("mapreduce mapper key(k) value(v) kvpairs(8)")
            .unwrap()
            .unwrap();
        assert_eq!(ok.kvpairs, Some(8));
        let e = parse("mapreduce combiner key(k) value(v) keyin(a) valuein(b) kvpairs(8)");
        assert!(e.is_err());
    }

    #[test]
    fn missing_key_or_value_rejected() {
        assert!(parse("mapreduce mapper value(v)").is_err());
        assert!(parse("mapreduce mapper key(k)").is_err());
    }

    #[test]
    fn thread_attributes() {
        let d = parse("mapreduce mapper key(k) value(v) blocks(64) threads(256)")
            .unwrap()
            .unwrap();
        assert_eq!(d.blocks, Some(64));
        assert_eq!(d.threads, Some(256));
        assert!(parse("mapreduce mapper key(k) value(v) blocks(0)").is_err());
    }

    #[test]
    fn memory_clauses() {
        let d = parse("mapreduce mapper key(k) value(v) sharedRO(n, centroids) texture(centroids)")
            .unwrap()
            .unwrap();
        assert_eq!(d.shared_ro, vec!["n", "centroids"]);
        assert_eq!(d.texture, vec!["centroids"]);
    }

    #[test]
    fn unknown_clause_rejected() {
        assert!(parse("mapreduce mapper key(k) value(v) frobnicate(3)").is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        assert!(parse("mapreduce reducer key(k) value(v)").is_err());
        assert!(parse("mapreduce").is_err());
    }

    #[test]
    fn non_integer_length_rejected() {
        assert!(parse("mapreduce mapper key(k) value(v) keylength(abc)").is_err());
    }
}
