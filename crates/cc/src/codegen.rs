//! CUDA-like source emission from a translated [`KernelSpec`].
//!
//! The real HeteroDoop emits CUDA compiled by `nvcc`; here the generated
//! text serves as an inspectable, golden-testable artifact demonstrating
//! the translation (compare Listings 3 and 4 of the paper), while actual
//! execution happens on the simulated GPU. The module also emits the host
//! driver skeleton of Fig. 1.

use crate::ast::*;
use crate::pragma::DirectiveKind;
use crate::translate::{KernelSpec, ParamOrigin};
use std::fmt::Write;

/// Render the `__global__` kernel for `spec`.
pub fn kernel_source(spec: &KernelSpec) -> String {
    let mut out = String::new();
    let params = spec
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "__global__ void {}({}) {{", spec.name, params);

    // Private declarations. Combiner private arrays live in per-warp
    // shared memory (paper §4.2).
    for p in &spec.privates {
        if p.in_shared_mem {
            let _ = writeln!(
                out,
                "  __shared__ {} {}[WARPS_IN_TB][{}];",
                base_ty(&p.ty),
                p.name,
                p.elems
            );
        } else if p.elems > 1 {
            let _ = writeln!(out, "  {} {}[{}];", base_ty(&p.ty), p.name, p.elems);
        } else {
            let _ = writeln!(out, "  {} {};", p.ty, p.name);
        }
    }

    match spec.kind {
        DirectiveKind::Mapper => {
            let _ = writeln!(out, "  int index, tid, start;");
            let _ = writeln!(out, "  __shared__ unsigned int recordIndex;");
            let _ = writeln!(
                out,
                "  mapSetup(&start, &tid, &index, ipSize, storesPerThread,\n    ip, devKvCount, numReducers, &recordIndex);"
            );
        }
        DirectiveKind::Combiner => {
            let _ = writeln!(
                out,
                "  int laneID, kvsPerThread, warpID, ptr, high, kvCount, index;"
            );
            let _ = writeln!(
                out,
                "  combineSetup(kvsPerThread, &laneID, &warpID, &ptr,\n    &high, &kvCount, &index, size);"
            );
        }
    }

    // Firstprivate initialization (Algorithm 1 insertInKernelCopyCode).
    for p in spec.privates.iter().filter(|p| p.firstprivate_init) {
        if p.elems > 1 {
            let idx = if p.in_shared_mem {
                format!("{}[warpID]", p.name)
            } else {
                p.name.clone()
            };
            let _ = writeln!(
                out,
                "  for (int i = 0; i < {}; i++) {{ {}[i] = {}FP[i]; }}",
                p.elems, idx, p.original
            );
        } else {
            let _ = writeln!(out, "  {} = {}FP;", p.name, p.original);
        }
    }

    // The translated loop body.
    emit_stmt(&spec.body, &mut out, 1);

    match spec.kind {
        DirectiveKind::Mapper => {
            let _ = writeln!(
                out,
                "  mapFinish(index, storesPerThread, devKey, keyLength,\n    indexArray, numReducers, devKvCount);"
            );
        }
        DirectiveKind::Combiner => {
            let _ = writeln!(out, "  finalCount[warpID] = kvCount;");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the host driver skeleton for a map+combine task (Fig. 1).
pub fn host_driver_source(map: &KernelSpec, combine: Option<&KernelSpec>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "void run_gpu_task(const char *fileSplit) {{");
    let _ = writeln!(out, "  // Fig. 1: copy input fileSplit from HDFS to GPU");
    let _ = writeln!(out, "  char *ip = hdfsReadSplit(fileSplit);");
    let _ = writeln!(
        out,
        "  cudaMemcpy(dev_ip, ip, ipSize, cudaMemcpyHostToDevice);"
    );
    let _ = writeln!(out, "  // collect & count records");
    let _ = writeln!(
        out,
        "  recordLocatorKernel<<<GRID, TB>>>(dev_ip, ipSize, recordLocator);"
    );
    let kv = match map.kvpairs_hint {
        Some(n) => format!(
            "  // kvpairs({n}) clause: bound the global KV store\n  allocKvStore(numRecords * {n});"
        ),
        None => "  // no kvpairs clause: allocate all free GPU memory (over-allocation)\n  allocKvStore(cudaMemGetFree());".to_string(),
    };
    let _ = writeln!(out, "{kv}");
    for t in &map.textures {
        let _ = writeln!(out, "  cudaBindTexture(tex_{t}, dev_{t}, bytes_{t});");
    }
    let _ = writeln!(
        out,
        "  {}<<<{}, {}>>>({});",
        map.name,
        map.blocks,
        map.threads,
        map.params
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  aggregateKvStore(indexArray, devKvCount);  // compaction before sort"
    );
    let _ = writeln!(out, "  for (int r = 0; r < numReducers; r++) {{");
    let _ = writeln!(
        out,
        "    sortPartition(r, indexArray);  // indirection merge sort"
    );
    if let Some(c) = combine {
        let _ = writeln!(
            out,
            "    {}<<<{}, {}>>>({});",
            c.name,
            c.blocks,
            c.threads,
            c.params
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(
        out,
        "  writeSequenceFile(output);  // Hadoop binary format + checksum"
    );
    let _ = writeln!(out, "  cudaFreeAll();");
    let _ = writeln!(out, "}}");
    out
}

fn base_ty(ty: &str) -> &str {
    ty.split('[').next().unwrap_or(ty).trim()
}

fn emit_stmt(s: &Stmt, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    match &s.kind {
        StmtKind::Decl(ds) => {
            for d in ds {
                match &d.ty {
                    CType::Array(el, Some(n)) => {
                        let _ = writeln!(out, "{pad}{} {}[{}];", el.c_name(), d.name, n);
                    }
                    _ => {
                        let init = d
                            .init
                            .as_ref()
                            .map(|e| format!(" = {}", emit_expr(e)))
                            .unwrap_or_default();
                        let _ = writeln!(out, "{pad}{} {}{};", d.ty.c_name(), d.name, init);
                    }
                }
            }
        }
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", emit_expr(e));
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({}) {{", emit_expr(cond));
            emit_stmt_body(body, out, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_s = init.as_ref().map(|i| inline_stmt(i)).unwrap_or_default();
            let cond_s = cond.as_ref().map(emit_expr).unwrap_or_default();
            let step_s = step.as_ref().map(emit_expr).unwrap_or_default();
            let _ = writeln!(out, "{pad}for ({init_s}; {cond_s}; {step_s}) {{");
            emit_stmt_body(body, out, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::If { cond, then, els } => {
            let _ = writeln!(out, "{pad}if ({}) {{", emit_expr(cond));
            emit_stmt_body(then, out, depth + 1);
            match els {
                Some(e) => {
                    let _ = writeln!(out, "{pad}}} else {{");
                    emit_stmt_body(e, out, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
                None => {
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
        StmtKind::Return(e) => {
            let _ = match e {
                Some(x) => writeln!(out, "{pad}return {};", emit_expr(x)),
                None => writeln!(out, "{pad}return;"),
            };
        }
        StmtKind::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        StmtKind::Block(v) => {
            for st in v {
                emit_stmt(st, out, depth);
            }
        }
        StmtKind::Annotated(_, inner) => emit_stmt(inner, out, depth),
        StmtKind::Empty => {}
    }
}

fn emit_stmt_body(s: &Stmt, out: &mut String, depth: usize) {
    match &s.kind {
        StmtKind::Block(v) => {
            for st in v {
                emit_stmt(st, out, depth);
            }
        }
        _ => emit_stmt(s, out, depth),
    }
}

fn inline_stmt(s: &Stmt) -> String {
    match &s.kind {
        StmtKind::Expr(e) => emit_expr(e),
        StmtKind::Decl(ds) if ds.len() == 1 => {
            let d = &ds[0];
            format!(
                "{} {}{}",
                d.ty.c_name(),
                d.name,
                d.init
                    .as_ref()
                    .map(|e| format!(" = {}", emit_expr(e)))
                    .unwrap_or_default()
            )
        }
        _ => String::new(),
    }
}

fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::StrLit(s) => format!("{:?}", s),
        Expr::CharLit(c) => match *c {
            0 => "'\\0'".to_string(),
            b'\n' => "'\\n'".to_string(),
            b'\t' => "'\\t'".to_string(),
            c => format!("'{}'", c as char),
        },
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, x) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::AddrOf => "&",
                UnOp::Deref => "*",
                UnOp::PreInc => "++",
                UnOp::PreDec => "--",
            };
            format!("{sym}{}", emit_expr(x))
        }
        Expr::PostInc(x) => format!("{}++", emit_expr(x)),
        Expr::PostDec(x) => format!("{}--", emit_expr(x)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            format!("({} {sym} {})", emit_expr(a), emit_expr(b))
        }
        Expr::Assign(op, a, b) => {
            let sym = match op {
                AssignOp::None => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
                AssignOp::Rem => "%=",
            };
            format!("{} {sym} {}", emit_expr(a), emit_expr(b))
        }
        Expr::Cond(c, t, f) => format!("({} ? {} : {})", emit_expr(c), emit_expr(t), emit_expr(f)),
        Expr::Call(n, args) => format!(
            "{n}({})",
            args.iter().map(emit_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Index(a, b) => format!("{}[{}]", emit_expr(a), emit_expr(b)),
        Expr::Cast(t, x) => format!("({}){}", t.c_name(), emit_expr(x)),
        Expr::SizeOf(t) => format!("sizeof({})", t.c_name()),
    }
}

/// Summarize a spec's parameter origins (used in reports / examples).
pub fn describe_params(spec: &KernelSpec) -> String {
    let mut out = String::new();
    for p in &spec.params {
        let what = match &p.origin {
            ParamOrigin::Bookkeeping => "runtime bookkeeping".to_string(),
            ParamOrigin::ConstantScalar(v) => format!("sharedRO scalar '{v}' -> constant memory"),
            ParamOrigin::GlobalArray(v) => format!("sharedRO array '{v}' -> global memory"),
            ParamOrigin::TextureArray(v) => format!("array '{v}' -> texture memory"),
            ParamOrigin::FirstPrivateScalar(v) => {
                format!("firstprivate scalar '{v}' initial value")
            }
            ParamOrigin::FirstPrivateArray(v) => format!("firstprivate array '{v}' staging"),
        };
        let _ = writeln!(out, "{:24} {:10} {}", p.name, p.ty, what);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;
    use crate::translate::translate;

    fn gen(src: &str) -> String {
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let specs = translate(&prog, &a).unwrap();
        kernel_source(&specs[0])
    }

    const WC_MAP: &str = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;

    #[test]
    fn generated_mapper_matches_listing3_structure() {
        let cu = gen(WC_MAP);
        assert!(cu.starts_with("__global__ void gpu_mapper("));
        assert!(cu.contains("char gpu_word[30];"));
        assert!(cu.contains("__shared__ unsigned int recordIndex;"));
        assert!(cu.contains("mapSetup("));
        assert!(cu.contains("getRecord("));
        assert!(cu.contains("emitKV("));
        assert!(cu.contains("mapFinish("));
        assert!(!cu.contains("getline("));
        assert!(!cu.contains("printf("));
    }

    const WC_COMBINE: &str = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) \
    keylength(30) vallength(1) firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) { count += val; }
      else {
        if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;

    #[test]
    fn generated_combiner_matches_listing4_structure() {
        let cu = gen(WC_COMBINE);
        assert!(cu.starts_with("__global__ void gpu_combiner("));
        assert!(cu.contains("__shared__ char gpu_prevWord[WARPS_IN_TB][30];"));
        assert!(cu.contains("combineSetup("));
        assert!(cu.contains("getKV("));
        assert!(cu.contains("storeKV("));
        assert!(cu.contains("strcmpGPU("));
        assert!(cu.contains("strcpyGPU("));
        assert!(cu.contains("finalCount[warpID] = kvCount;"));
        // Firstprivate copy-in loop, as in Listing 4 lines 13–15.
        assert!(cu.contains("gpu_prevWord[warpID][i] = prevWordFP[i];"));
    }

    #[test]
    fn host_driver_reflects_fig1() {
        let prog = parse(WC_MAP).unwrap();
        let a = analyze(&prog).unwrap();
        let specs = translate(&prog, &a).unwrap();
        let drv = host_driver_source(&specs[0], None);
        assert!(drv.contains("cudaMemcpy"));
        assert!(drv.contains("recordLocatorKernel"));
        assert!(drv.contains("allocKvStore(cudaMemGetFree())"));
        assert!(drv.contains("aggregateKvStore"));
        assert!(drv.contains("sortPartition"));
        assert!(drv.contains("writeSequenceFile"));
    }

    #[test]
    fn kvpairs_hint_changes_host_allocation() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) kvpairs(8)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let specs = translate(&prog, &a).unwrap();
        let drv = host_driver_source(&specs[0], None);
        assert!(drv.contains("numRecords * 8"));
        assert!(!drv.contains("cudaMemGetFree"));
    }

    #[test]
    fn expr_precedence_parenthesized() {
        let cu = gen(WC_MAP);
        // Output must be reparseable C; spot-check an expression.
        assert!(cu.contains("gpu_offset += gpu_linePtr") || cu.contains("gpu_offset"));
    }

    #[test]
    fn describe_params_mentions_placements() {
        let src = r#"
int main() {
  double c[16]; int k; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) sharedRO(k) texture(c)
  while (getline(&word, 0, stdin) != -1) { one = k + (c[0] > 0.0); printf("x\t1\n"); }
}
"#;
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        let specs = translate(&prog, &a).unwrap();
        let desc = describe_params(&specs[0]);
        assert!(desc.contains("constant memory"));
        assert!(desc.contains("texture memory"));
    }
}
