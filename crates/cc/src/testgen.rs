//! Random well-typed program generator for the C subset.
//!
//! Emits programs for the differential test harness
//! (`tests/differential_gen.rs`): every generated program is well-formed
//! under the interpreter's semantics, and the interpreter and the native
//! backend must agree on it — byte-identical stdout, identical
//! [`InterpStats`](crate::interp::InterpStats), identical error text.
//! The generator is deliberately dependency-free (its own splitmix64
//! RNG) so it can ship as a library module reused by tests, fuzzing,
//! and benches.
//!
//! # Generated grammar
//!
//! A case is a fixed **prelude** (a pool of scalars `i0..i3 t`,
//! doubles `d0 d1`, strings `s0[32] s1[32]`, a pointer `p0`, arrays
//! `a0[16]` and `m0[4][5]`, all deterministically initialized), two
//! fixed **helper functions** (one arithmetic, one recursive), and a
//! random sequence of independent **segments** drawn from:
//!
//! * integer arithmetic/compare/bitwise chains (division and remainder
//!   by guaranteed-nonzero denominators, except for deliberate
//!   error-parity cases),
//! * ternary / short-circuit logical combinations,
//! * `for` loops over `a0` with in-bounds indices (`(x % 16 + 16) % 16`),
//! * doubly-nested loops over the strided 2-D array `m0`,
//! * string builtins (`strcpy`/`strcmp`/`strfind`/`strlen`/`atoi`) over
//!   `s0`/`s1` and literals, pointer arithmetic through `p0`,
//! * SFU chains (`sqrt`/`exp`/`log`/`fabs`/`floor`/`ceil`/`erf`/`pow`),
//! * helper-function calls (including bounded recursion),
//! * `printf` emissions mixing `%d`/`%c`/`%s`/`%f`/`%e`/`%g` with
//!   random precisions, `%%`, and multi-conversion formats,
//! * input loops — `getline`+`getWord`/`getTok` over line records
//!   (mapper mode) or `scanf` over KV records (combiner mode),
//! * **provable-subscript sweeps** — counted loops over `a0` with
//!   non-unit strides and mirrored (`15 - i3`) indices that the value
//!   analysis (`lint::absint`) proves in-bounds, so the native
//!   backend's guard elision is exercised on every sweep case and the
//!   checked-elision mode can falsify a wrong proof,
//! * **provably-nonzero division ladders** — block-local denominators
//!   shaped like `(x & 7) + 1`, provable in `[1, 8]`, driving zero-test
//!   elision at division/remainder sites,
//! * **maybe-uninitialized locals** — block-scoped scalars read before
//!   any write on some (or all) paths; the interpreter defines them by
//!   default-value semantics so execution parity holds, while the
//!   analyzer's initialization domain (HD018) sees the uninit read.
//!
//! Each segment only reads/writes the pool, so **any subset of segments
//! is still a valid program** — shrinking a failing case is just
//! dropping segments (see [`GenCase::source_with`]).
//!
//! # Subset holes (documented, deliberately not generated)
//!
//! * `&scalar` references escaping their function activation or held
//!   across a loop-body redeclaration (the backends differ on slot
//!   reuse — see `backend::native` module docs).
//! * Writes through a string-literal pointer held across evaluations
//!   (each evaluation allocates a fresh buffer in both backends, but
//!   aliasing patterns are not part of the spec).
//! * Ill-formed programs beyond the deliberate error-parity cases: the
//!   native backend compiles unknown names eagerly into deferred-error
//!   closures, so *unexecuted* ill-formed code is fine, but the
//!   generator keeps all emitted code executable.
//! * `calloc`/`malloc` with huge or negative sizes (allocation is real
//!   in both backends).

use crate::interp::StreamIo;

/// Deterministic splitmix64 RNG (no external deps; stable across
/// platforms so CI seeds reproduce everywhere).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `i64` in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Input shape for a generated case.
#[derive(Debug, Clone)]
pub enum GenInput {
    /// Line records for `getline`-based segments.
    Lines(Vec<Vec<u8>>),
    /// KV records for `scanf`-based segments.
    Kvs(Vec<(Vec<u8>, Vec<u8>)>),
}

/// One generated differential test case.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The seed this case was generated from.
    pub seed: u64,
    /// Independent statement blocks composing `main`'s body.
    pub segments: Vec<String>,
    /// The input records fed to the program.
    pub input: GenInput,
}

/// Fixed helper functions available to every case.
const HELPERS: &str = r#"int mix2(int x, int y) { return x * 3 + y - (x / 7) * 2; }
int recsum(int n) { if (n <= 0) return 0; return n + recsum(n - 1); }
double dmix(double a, double b) { return a * 0.5 + b + 1.25; }
"#;

/// Fixed variable-pool prelude. Arrays start zeroed (spec'd by the
/// declaration semantics); scalars are seeded by the generator with
/// per-case literals appended right after this block.
const PRELUDE: &str = r#"  int i0, i1, i2, i3, t;
  double d0, d1;
  char s0[32], s1[32];
  char *p0;
  int a0[16];
  double m0[4][5];
"#;

impl GenCase {
    /// Render the full program source.
    pub fn source(&self) -> String {
        let mask = vec![true; self.segments.len()];
        self.source_with(&mask)
    }

    /// Render the program with only the masked-in segments — the shrink
    /// operation. Any mask yields a valid program because segments are
    /// independent.
    pub fn source_with(&self, mask: &[bool]) -> String {
        let mut src = String::new();
        src.push_str(HELPERS);
        src.push_str("int main() {\n");
        src.push_str(PRELUDE);
        for (seg, keep) in self.segments.iter().zip(mask) {
            if *keep {
                src.push_str(seg);
            }
        }
        src.push_str("  return 0;\n}\n");
        src
    }

    /// Build the input stream for one run.
    pub fn make_io(&self) -> StreamIo {
        match &self.input {
            GenInput::Lines(ls) => StreamIo::lines(ls.clone()),
            GenInput::Kvs(kvs) => StreamIo::kvs(kvs.clone()),
        }
    }

    /// Human-readable dump of the input records (for counterexample
    /// artifacts).
    pub fn input_dump(&self) -> String {
        match &self.input {
            GenInput::Lines(ls) => ls
                .iter()
                .map(|l| format!("line: {:?}\n", String::from_utf8_lossy(l)))
                .collect(),
            GenInput::Kvs(kvs) => kvs
                .iter()
                .map(|(k, v)| {
                    format!(
                        "kv: {:?} -> {:?}\n",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    )
                })
                .collect(),
        }
    }
}

const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "alpha", "beta", "gamma",
    "delta", "x1", "y2", "z_3", "don't",
];

/// Generate one case from a seed. Deterministic: equal seeds yield
/// equal cases on every platform.
pub fn generate(seed: u64) -> GenCase {
    let mut rng = TestRng::new(seed);
    // Mode: 0 = pure compute, 1 = mapper (line input), 2 = combiner
    // (KV input).
    let mode = rng.below(3);
    let mut segments = Vec::new();
    // Deterministic scalar seeding so every later segment has defined
    // values to chew on.
    segments.push(format!(
        "  i0 = {}; i1 = {}; i2 = {}; i3 = {}; t = 0;\n  d0 = {}.{}; d1 = {}.{};\n  strcpy(s0, \"{}\"); strcpy(s1, \"{}\"); p0 = s0;\n",
        rng.range_i64(-50, 50),
        rng.range_i64(1, 40),
        rng.range_i64(-9, 9),
        rng.range_i64(0, 15),
        rng.range_i64(-20, 20),
        rng.below(100),
        rng.range_i64(0, 12),
        rng.below(100),
        rng.pick(WORDS),
        rng.pick(WORDS),
    ));
    let nseg = 3 + rng.below(6) as usize;
    for _ in 0..nseg {
        segments.push(gen_segment(&mut rng, mode));
    }
    // Emit a digest of the whole pool so silent state divergence always
    // becomes visible output divergence.
    segments.push(
        "  for (i3 = 0; i3 < 16; i3++) t = t * 31 + a0[i3];\n  \
           printf(\"digest\\t%d\\t%.6f\\t%.6f\\t%s\\t%s\\t%d\\n\", t, d0, d1, s0, s1, i0 + i1 * 1000 + i2);\n"
            .to_string(),
    );
    let input = match mode {
        1 => GenInput::Lines(gen_lines(&mut rng)),
        2 => GenInput::Kvs(gen_kvs(&mut rng)),
        _ => GenInput::Lines(Vec::new()),
    };
    GenCase {
        seed,
        segments,
        input,
    }
}

fn gen_lines(rng: &mut TestRng) -> Vec<Vec<u8>> {
    let n = rng.below(6) as usize;
    (0..n)
        .map(|_| match rng.below(5) {
            0 => Vec::new(),          // empty record
            1 => b"   \t  ".to_vec(), // whitespace only
            _ => {
                let words = 1 + rng.below(5);
                let mut line = String::new();
                for w in 0..words {
                    if w > 0 {
                        line.push_str(if rng.chance(1, 4) { "  " } else { " " });
                    }
                    line.push_str(rng.pick(WORDS).to_owned());
                }
                line.into_bytes()
            }
        })
        .collect()
}

fn gen_kvs(rng: &mut TestRng) -> Vec<(Vec<u8>, Vec<u8>)> {
    let n = rng.below(7) as usize;
    (0..n)
        .map(|_| {
            let k = rng.pick(WORDS).as_bytes().to_vec();
            let v = match rng.below(4) {
                0 => rng.range_i64(-999, 999).to_string(),
                1 => format!("{}.{}", rng.range_i64(-9, 9), rng.below(100)),
                2 => String::new(),               // empty value: parses to 0/0.0
                _ => rng.pick(WORDS).to_string(), // non-numeric: parses to 0
            };
            (k, v.into_bytes())
        })
        .collect()
}

fn gen_segment(rng: &mut TestRng, mode: u64) -> String {
    let ints = ["i0", "i1", "i2", "t"];
    let dbls = ["d0", "d1"];
    match rng.below(if mode == 0 { 11 } else { 12 }) {
        0 => {
            // Integer arithmetic chain; denominators forced nonzero,
            // except a rare deliberate error-parity division.
            let a = *rng.pick(&ints);
            let b = *rng.pick(&ints);
            let op = *rng.pick(&["+", "-", "*", "&", "|", "^"]);
            let cmp = *rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
            let mut s = format!(
                "  t = ({a} {op} {lit}) + ({b} {cmp} {lit2});\n",
                lit = rng.range_i64(-40, 40),
                lit2 = rng.range_i64(-10, 10),
            );
            if rng.chance(1, 24) {
                // Error-parity case: both backends must fault with the
                // same message at the same point.
                s.push_str(&format!("  t = t {} (i1 - i1);\n", rng.pick(&["/", "%"])));
            } else {
                s.push_str(&format!(
                    "  i0 = i0 {} ((i1 % 7) + 8) + t % ({} + (i3 & 3));\n",
                    rng.pick(&["/", "%"]),
                    rng.range_i64(5, 30),
                ));
            }
            s
        }
        1 => {
            // Ternary + short-circuit logic + pre/post inc-dec.
            let a = *rng.pick(&ints);
            format!(
                "  t = ({a} > {l1} && i1 != {l2}) ? (i2++ + {a}) : (--i1 - {l3});\n  i2 = (i0 < {l4} || !t) + (t ? 1 : 2);\n",
                l1 = rng.range_i64(-20, 20),
                l2 = rng.range_i64(-5, 5),
                l3 = rng.range_i64(0, 9),
                l4 = rng.range_i64(-30, 30),
            )
        }
        2 => {
            // Array sweep with in-bounds index arithmetic.
            let mul = rng.range_i64(1, 9);
            let idx = "(((i0 + i3) % 16 + 16) % 16)";
            format!(
                "  for (i3 = 0; i3 < 16; i3++) {{ a0[i3] = a0[i3] + i3 * {mul} + (i1 & 7); }}\n  a0[{idx}] = a0[{idx}] + t;\n  t += a0[((i2 % 16 + 16) % 16)];\n"
            )
        }
        3 => {
            // Strided 2-D sweep.
            let base = rng.range_i64(0, 4);
            format!(
                "  for (i3 = 0; i3 < 4; i3++) {{\n    int j;\n    for (j = 0; j < 5; j++) m0[i3][j] = m0[i3][j] + i3 * 5 + j + 0.{base};\n  }}\n  d0 += m0[(i1 % 4 + 4) % 4][(i2 % 5 + 5) % 5];\n"
            )
        }
        4 => {
            // String builtins + pointer arithmetic.
            let w = rng.pick(WORDS);
            let off = rng.below(4);
            format!(
                "  strcpy(s1, \"{w}\");\n  t += strcmp(s0, s1) + strfind(s0, \"{n}\") + strlen(s1);\n  p0 = s0 + {off};\n  if (*p0) {{ *p0 = 'A' + (i1 & 15); }}\n  i2 += atoi(\"{num}\");\n",
                n = &w[..1],
                num = rng.range_i64(-99, 99),
            )
        }
        5 => {
            // SFU chain.
            let f1 = *rng.pick(&["sqrt", "exp", "log", "fabs", "floor", "ceil", "erf"]);
            let d = *rng.pick(&dbls);
            format!(
                "  d0 = {f1}(fabs({d}) + {l}.5) + pow(fabs({d}) + 2.0, 0.{p});\n  d1 = d1 * 0.5 + d0 - (int) d0;\n",
                l = rng.range_i64(0, 9),
                p = 1 + rng.below(9),
            )
        }
        6 => {
            // Helper calls incl. bounded recursion.
            format!(
                "  t = mix2(i0 & 1023, i1) + recsum({n});\n  d1 = dmix(d0, {m}.25);\n",
                n = rng.below(12),
                m = rng.range_i64(-4, 4),
            )
        }
        7 => {
            // printf formats.
            match rng.below(4) {
                0 => format!(
                    "  printf(\"k{}\\t%d %c %s\\n\", t, 'a' + (i1 & 15), s0);\n",
                    rng.below(10)
                ),
                1 => format!(
                    "  printf(\"f\\t%.{p}f|%.{q}e|%g\\n\", d0, d1, d0 + d1);\n",
                    p = rng.below(9),
                    q = rng.below(5),
                ),
                2 => "  printf(\"pct\\t100%% done %d\\n\", i2);\n".to_string(),
                _ => format!(
                    "  printf(\"m\\t%d\\t%d\\n\", a0[{}], mix2(i2, 3));\n",
                    rng.below(16)
                ),
            }
        }
        8 => {
            // Provable-subscript sweep: strided and mirrored indices a
            // counted loop keeps inside [0, 16); the value analysis
            // proves every site, so elision (and checked-elision) run
            // on these stores.
            let add = rng.range_i64(1, 9);
            let half = *rng.pick(&["7", "8"]);
            format!(
                "  for (i3 = 0; i3 < {half}; i3++) {{\n    a0[i3 * 2] = a0[i3 * 2] + {add};\n    a0[15 - i3] = a0[15 - i3] ^ (i1 & 31);\n  }}\n"
            )
        }
        9 => {
            // Provably-nonzero division ladder: the denominator is
            // masked+offset into [1, 8] (or [2, 5]), so the analyzer
            // proves the zero test dead and the backend elides it.
            let a = *rng.pick(&ints);
            let b = *rng.pick(&ints);
            format!(
                "  {{\n    int den;\n    den = ({a} & 7) + 1;\n    t = ({b} * 3) / den + ({b} % den);\n    i1 = i1 + t % (({a} & 3) + 2);\n  }}\n",
            )
        }
        10 => {
            // Maybe-uninitialized block-local: read before any write on
            // some or every path. Declaration semantics define the
            // value (zero), so both backends agree; the initialization
            // domain sees the uninit read (HD018).
            if rng.chance(1, 2) {
                format!(
                    "  {{\n    int u;\n    t = t + u + {l};\n    u = i1;\n    t = t + u;\n  }}\n",
                    l = rng.range_i64(-9, 9),
                )
            } else {
                format!(
                    "  {{\n    int u;\n    if (i0 > {l}) {{ u = i2; }}\n    t = t + u;\n  }}\n",
                    l = rng.range_i64(-20, 20),
                )
            }
        }
        _ => {
            // Input loop, shaped by mode.
            if mode == 1 {
                let tok = *rng.pick(&["getWord", "getTok"]);
                let cap = 8 + rng.below(24);
                format!(
                    "  {{\n    char *line; char tokbuf[32]; int rd, lp, off;\n    line = (char*) malloc(64);\n    while ((rd = getline(&line, &i3, stdin)) != -1) {{\n      off = 0;\n      while ((lp = {tok}(line, off, tokbuf, rd, {cap})) != -1) {{\n        printf(\"tok\\t%s\\t%d\\n\", tokbuf, rd);\n        off += lp;\n        t++;\n      }}\n    }}\n  }}\n"
                )
            } else {
                let fmt = *rng.pick(&["%s %d", "%s %lf", "%s %s"]);
                let (dty, darg, pconv) = if fmt == "%s %d" {
                    ("int", "&v", "%d")
                } else if fmt == "%s %lf" {
                    ("double", "&v", "%.4f")
                } else {
                    ("char", "v", "%s")
                };
                let decl = if dty == "char" {
                    "char v[32];".to_string()
                } else {
                    format!("{dty} v;")
                };
                format!(
                    "  {{\n    char kbuf[32]; {decl} int rd;\n    while ((rd = scanf(\"{fmt}\", kbuf, {darg})) == 2) {{\n      printf(\"kv\\t%s\\t{pconv}\\n\", kbuf, v);\n      t++;\n    }}\n  }}\n"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn rng_is_deterministic_and_spreads() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
        let mut c = TestRng::new(43);
        assert_ne!(c.next_u64(), xs[0]);
    }

    #[test]
    fn generated_programs_parse() {
        for seed in 0..64 {
            let case = generate(seed);
            let src = case.source();
            parse(&src).unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{src}"));
        }
    }

    #[test]
    fn any_segment_subset_parses() {
        let case = generate(7);
        let n = case.segments.len();
        for drop in 0..n {
            let mask: Vec<bool> = (0..n).map(|i| i != drop).collect();
            let src = case.source_with(&mask);
            parse(&src).unwrap_or_else(|e| panic!("subset without segment {drop} broke: {e}"));
        }
    }

    #[test]
    fn same_seed_same_case() {
        let a = generate(123);
        let b = generate(123);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.source(), b.source());
    }
}
