//! Kernel extraction and translation (paper §4.1–§4.2).
//!
//! Converts an analyzed region into a [`KernelSpec`]: the annotated loop
//! is extracted into a new GPU kernel function, bookkeeping parameters are
//! added, CPU I/O calls are swapped for their runtime equivalents
//! (`getline`→`getRecord`, `printf`→`emitKV`/`storeKV`, `scanf`→`getKV`),
//! variables are renamed with the `gpu_` prefix, and vectorization /
//! shared-memory decisions are recorded. The spec drives both the
//! CUDA-like code generator ([`crate::codegen`]) and the simulated-GPU
//! execution configuration in the HeteroDoop core.

use crate::ast::*;
use crate::error::CcError;
use crate::pragma::DirectiveKind;
use crate::sema::{Analysis, Placement, RegionInfo};
use std::collections::BTreeMap;

/// A kernel parameter added by the translator.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelParam {
    /// Parameter name in the generated kernel.
    pub name: String,
    /// C type spelling.
    pub ty: String,
    /// Why it exists.
    pub origin: ParamOrigin,
}

/// Provenance of a kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamOrigin {
    /// Internal bookkeeping (ip, recordLocator, devKey, indexArray...).
    Bookkeeping,
    /// Shared read-only scalar (constant memory).
    ConstantScalar(String),
    /// Shared read-only array in global memory.
    GlobalArray(String),
    /// Texture-bound array.
    TextureArray(String),
    /// Initial value of a firstprivate scalar.
    FirstPrivateScalar(String),
    /// Staging pointer for a firstprivate array.
    FirstPrivateArray(String),
}

/// A per-thread private variable materialized inside the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateVar {
    /// `gpu_`-prefixed name.
    pub name: String,
    /// Original name in the user program.
    pub original: String,
    /// C type spelling.
    pub ty: String,
    /// Placed in per-warp shared memory (combiner private arrays, §4.2).
    pub in_shared_mem: bool,
    /// Copied from a firstprivate staging parameter at kernel start.
    pub firstprivate_init: bool,
    /// Element count for arrays (1 for scalars).
    pub elems: usize,
}

/// Everything the rest of the system needs to run the translated kernel.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// `gpu_mapper` or `gpu_combiner`.
    pub name: String,
    /// Mapper or combiner.
    pub kind: DirectiveKind,
    /// Full parameter list in order.
    pub params: Vec<KernelParam>,
    /// Private variables (with shared-memory placement decisions).
    pub privates: Vec<PrivateVar>,
    /// Emitted key length in bytes.
    pub key_length: usize,
    /// Emitted value length in bytes.
    pub val_length: usize,
    /// Vectorized (char4-style) KV access is generated — true when the
    /// key or value is an array (paper §4.1 "Using Vector Data Types").
    pub vectorize: bool,
    /// Threadblock count (from the `blocks` clause or the default).
    pub blocks: u32,
    /// Threads per block (from the `threads` clause or the default).
    pub threads: u32,
    /// `kvpairs` hint, if given.
    pub kvpairs_hint: Option<usize>,
    /// Names of texture-bound arrays (binding order).
    pub textures: Vec<String>,
    /// The translated region body (I/O calls replaced, vars renamed).
    pub body: Stmt,
    /// Key variable (gpu-renamed) for emit calls.
    pub key_var: String,
    /// Value variable (gpu-renamed).
    pub val_var: String,
}

/// Default launch geometry when the user gives no `blocks`/`threads`
/// clauses (matches the prototype's defaults).
pub const DEFAULT_BLOCKS: u32 = 60;
/// Default threads per block.
pub const DEFAULT_THREADS: u32 = 128;

/// Translate every analyzed region of `prog` into kernel specs.
pub fn translate(prog: &Program, analysis: &Analysis) -> Result<Vec<KernelSpec>, CcError> {
    analysis
        .regions
        .iter()
        .map(|r| translate_region(prog, r))
        .collect()
}

fn translate_region(prog: &Program, region: &RegionInfo) -> Result<KernelSpec, CcError> {
    let dir = &prog.directives[region.directive_idx];
    let main = prog.func("main").expect("analysis guarantees main");
    let body = find_region_stmt(&main.body, region.directive_idx)
        .ok_or_else(|| CcError::sema(dir.span, "annotated region disappeared"))?;

    let is_mapper = region.kind == DirectiveKind::Mapper;
    let mut params: Vec<KernelParam> = Vec::new();
    let bk = |name: &str, ty: &str| KernelParam {
        name: name.to_string(),
        ty: ty.to_string(),
        origin: ParamOrigin::Bookkeeping,
    };
    // Bookkeeping parameters, mirroring Listings 3 and 4.
    if is_mapper {
        for (n, t) in [
            ("ip", "char *"),
            ("ipSize", "int"),
            ("recordLocator", "int *"),
            ("devKey", "char *"),
            ("devVal", "char *"),
            ("storesPerThread", "int"),
            ("devKvCount", "int *"),
            ("keyLength", "int"),
            ("valLength", "int"),
            ("indexArray", "int *"),
            ("numReducers", "int"),
        ] {
            params.push(bk(n, t));
        }
    } else {
        for (n, t) in [
            ("keys", "char *"),
            ("values", "char *"),
            ("opKey", "char *"),
            ("opVal", "char *"),
            ("indexArray", "int *"),
            ("size", "int"),
            ("mapKeyLength", "int"),
            ("mapValLength", "int"),
            ("combKeyLength", "int"),
            ("combValLength", "int"),
        ] {
            params.push(bk(n, t));
        }
    }

    // HandleVariables (Algorithm 1): turn placements into parameters and
    // private declarations.
    let mut privates = Vec::new();
    let mut textures = Vec::new();
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    for (var, placement) in &region.placements {
        let ty = region.types.get(var).cloned().unwrap_or(CType::Int);
        let gpu_name = format!("gpu_{var}");
        match placement {
            Placement::ConstantScalar => {
                params.push(KernelParam {
                    name: var.clone(),
                    ty: ty.c_name(),
                    origin: ParamOrigin::ConstantScalar(var.clone()),
                });
            }
            Placement::GlobalArray => {
                params.push(KernelParam {
                    name: var.clone(),
                    ty: ptr_spelling(&ty),
                    origin: ParamOrigin::GlobalArray(var.clone()),
                });
            }
            Placement::TextureArray => {
                params.push(KernelParam {
                    name: var.clone(),
                    ty: ptr_spelling(&ty),
                    origin: ParamOrigin::TextureArray(var.clone()),
                });
                textures.push(var.clone());
            }
            Placement::Private | Placement::FirstPrivateScalar | Placement::FirstPrivateArray => {
                let fp = !matches!(placement, Placement::Private);
                if fp {
                    params.push(KernelParam {
                        name: format!("{var}FP"),
                        ty: if ty.is_array() || matches!(ty, CType::Ptr(_)) {
                            ptr_spelling(&ty)
                        } else {
                            ty.c_name()
                        },
                        origin: if matches!(placement, Placement::FirstPrivateArray) {
                            ParamOrigin::FirstPrivateArray(var.clone())
                        } else {
                            ParamOrigin::FirstPrivateScalar(var.clone())
                        },
                    });
                }
                let elems = match &ty {
                    CType::Array(_, Some(n)) => *n,
                    _ => 1,
                };
                // Combiner private arrays go to per-warp shared memory
                // (paper §4.2); mapper privates stay in registers/local.
                let in_shared = !is_mapper && ty.is_array();
                privates.push(PrivateVar {
                    name: gpu_name.clone(),
                    original: var.clone(),
                    ty: ty.c_name(),
                    in_shared_mem: in_shared,
                    firstprivate_init: fp,
                    elems,
                });
                renames.insert(var.clone(), gpu_name);
            }
        }
    }

    // Region-local declarations also become gpu_ privates.
    let tmp = [body.clone()];
    walk_stmts(&tmp, &mut |s| {
        if let StmtKind::Decl(ds) = &s.kind {
            for d in ds {
                renames
                    .entry(d.name.clone())
                    .or_insert_with(|| format!("gpu_{}", d.name));
            }
        }
    });

    let vectorize = region.key_is_array || region.val_is_array;
    let translated = rewrite_stmt(body, &renames, is_mapper);

    Ok(KernelSpec {
        name: if is_mapper {
            "gpu_mapper".to_string()
        } else {
            "gpu_combiner".to_string()
        },
        kind: region.kind,
        params,
        privates,
        key_length: region.key_length,
        val_length: region.val_length,
        vectorize,
        blocks: dir.blocks.unwrap_or(DEFAULT_BLOCKS),
        threads: dir.threads.unwrap_or(DEFAULT_THREADS),
        kvpairs_hint: dir.kvpairs,
        textures,
        body: translated,
        key_var: renames
            .get(&dir.key)
            .cloned()
            .unwrap_or_else(|| dir.key.clone()),
        val_var: renames
            .get(&dir.value)
            .cloned()
            .unwrap_or_else(|| dir.value.clone()),
    })
}

fn ptr_spelling(ty: &CType) -> String {
    match ty {
        CType::Array(el, _) => format!("{} *", leaf(el).c_name()),
        CType::Ptr(el) => format!("{} *", leaf(el).c_name()),
        other => format!("{} *", other.c_name()),
    }
}

fn leaf(t: &CType) -> &CType {
    match t {
        CType::Array(inner, _) | CType::Ptr(inner) => leaf(inner),
        other => other,
    }
}

fn find_region_stmt(stmts: &[Stmt], idx: usize) -> Option<&Stmt> {
    let mut found = None;
    walk_stmts(stmts, &mut |s| {
        if let StmtKind::Annotated(i, inner) = &s.kind {
            if *i == idx {
                found = Some(inner.as_ref());
            }
        }
    });
    found
}

/// Rewrite the region: rename privates to `gpu_*` and replace CPU I/O
/// calls with runtime equivalents.
fn rewrite_stmt(s: &Stmt, renames: &BTreeMap<String, String>, is_mapper: bool) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Decl(ds) => StmtKind::Decl(
            ds.iter()
                .map(|d| Declarator {
                    ty: d.ty.clone(),
                    name: renames
                        .get(&d.name)
                        .cloned()
                        .unwrap_or_else(|| d.name.clone()),
                    init: d.init.as_ref().map(|e| rewrite_expr(e, renames, is_mapper)),
                })
                .collect(),
        ),
        StmtKind::Expr(e) => StmtKind::Expr(rewrite_expr(e, renames, is_mapper)),
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rewrite_expr(cond, renames, is_mapper),
            body: Box::new(rewrite_stmt(body, renames, is_mapper)),
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init: init
                .as_ref()
                .map(|i| Box::new(rewrite_stmt(i, renames, is_mapper))),
            cond: cond.as_ref().map(|c| rewrite_expr(c, renames, is_mapper)),
            step: step.as_ref().map(|st| rewrite_expr(st, renames, is_mapper)),
            body: Box::new(rewrite_stmt(body, renames, is_mapper)),
        },
        StmtKind::If { cond, then, els } => StmtKind::If {
            cond: rewrite_expr(cond, renames, is_mapper),
            then: Box::new(rewrite_stmt(then, renames, is_mapper)),
            els: els
                .as_ref()
                .map(|e| Box::new(rewrite_stmt(e, renames, is_mapper))),
        },
        StmtKind::Return(e) => {
            StmtKind::Return(e.as_ref().map(|x| rewrite_expr(x, renames, is_mapper)))
        }
        StmtKind::Block(v) => StmtKind::Block(
            v.iter()
                .map(|st| rewrite_stmt(st, renames, is_mapper))
                .collect(),
        ),
        StmtKind::Annotated(i, inner) => {
            StmtKind::Annotated(*i, Box::new(rewrite_stmt(inner, renames, is_mapper)))
        }
        other => other.clone(),
    };
    Stmt { kind, span: s.span }
}

fn rewrite_expr(e: &Expr, renames: &BTreeMap<String, String>, is_mapper: bool) -> Expr {
    match e {
        Expr::Ident(n) => Expr::Ident(renames.get(n).cloned().unwrap_or_else(|| n.clone())),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(rewrite_expr(x, renames, is_mapper))),
        Expr::PostInc(x) => Expr::PostInc(Box::new(rewrite_expr(x, renames, is_mapper))),
        Expr::PostDec(x) => Expr::PostDec(Box::new(rewrite_expr(x, renames, is_mapper))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(a, renames, is_mapper)),
            Box::new(rewrite_expr(b, renames, is_mapper)),
        ),
        Expr::Assign(op, a, b) => Expr::Assign(
            *op,
            Box::new(rewrite_expr(a, renames, is_mapper)),
            Box::new(rewrite_expr(b, renames, is_mapper)),
        ),
        Expr::Cond(c, t, f) => Expr::Cond(
            Box::new(rewrite_expr(c, renames, is_mapper)),
            Box::new(rewrite_expr(t, renames, is_mapper)),
            Box::new(rewrite_expr(f, renames, is_mapper)),
        ),
        Expr::Index(a, b) => Expr::Index(
            Box::new(rewrite_expr(a, renames, is_mapper)),
            Box::new(rewrite_expr(b, renames, is_mapper)),
        ),
        Expr::Cast(t, x) => Expr::Cast(t.clone(), Box::new(rewrite_expr(x, renames, is_mapper))),
        Expr::Call(name, args) => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| rewrite_expr(a, renames, is_mapper))
                .collect();
            // Replace CPU library calls with runtime equivalents
            // (paper §4.1/§4.2 translation step; Listings 3 and 4).
            let new_name = match (name.as_str(), is_mapper) {
                ("getline", true) => "getRecord",
                ("scanf", false) => "getKV",
                ("printf", true) => "emitKV",
                ("printf", false) => "storeKV",
                ("strcmp", _) => "strcmpGPU",
                ("strcpy", _) => "strcpyGPU",
                ("strlen", _) => "strlenGPU",
                (n, _) => n,
            };
            Expr::Call(new_name.to_string(), args)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    const WC_MAP: &str = r#"
int main()
{
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes*sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while( (read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
"#;

    fn spec_for(src: &str) -> KernelSpec {
        let prog = parse(src).unwrap();
        let a = analyze(&prog).unwrap();
        translate(&prog, &a).unwrap().remove(0)
    }

    #[test]
    fn mapper_kernel_has_listing3_bookkeeping_params() {
        let spec = spec_for(WC_MAP);
        assert_eq!(spec.name, "gpu_mapper");
        let names: Vec<&str> = spec.params.iter().map(|p| p.name.as_str()).collect();
        for expect in [
            "ip",
            "ipSize",
            "recordLocator",
            "devKey",
            "devVal",
            "storesPerThread",
            "devKvCount",
            "indexArray",
            "numReducers",
        ] {
            assert!(names.contains(&expect), "missing param {expect}");
        }
    }

    #[test]
    fn mapper_privates_are_gpu_renamed() {
        let spec = spec_for(WC_MAP);
        let names: Vec<&str> = spec.privates.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"gpu_word"));
        assert!(names.contains(&"gpu_one"));
        assert!(names.contains(&"gpu_offset"));
        // Mapper privates are not in shared memory.
        assert!(spec.privates.iter().all(|p| !p.in_shared_mem));
    }

    #[test]
    fn io_calls_replaced_with_runtime_equivalents() {
        let spec = spec_for(WC_MAP);
        let mut calls = Vec::new();
        let tmp = [spec.body.clone()];
        walk_stmts(&tmp, &mut |s| {
            walk_exprs(s, &mut |e| {
                if let Expr::Call(n, _) = e {
                    calls.push(n.clone());
                }
            });
        });
        assert!(calls.contains(&"getRecord".to_string()));
        assert!(calls.contains(&"emitKV".to_string()));
        assert!(!calls.contains(&"getline".to_string()));
        assert!(!calls.contains(&"printf".to_string()));
    }

    #[test]
    fn array_key_enables_vectorization() {
        let spec = spec_for(WC_MAP);
        assert!(spec.vectorize, "char[30] key should vectorize");
        assert_eq!(spec.key_var, "gpu_word");
        assert_eq!(spec.key_length, 30);
    }

    const WC_COMBINE: &str = r#"
int main()
{
  char word[30], prevWord[30]; prevWord[0] = '\0';
  int count, val, read; count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) \
    keylength(30) vallength(1) firstprivate(prevWord, count)
  {
    while( (read = scanf("%s %d", word, &val)) == 2 ) {
      if(strcmp(word, prevWord) == 0 ) { count += val; }
      else {
        if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if(prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
"#;

    #[test]
    fn combiner_kernel_matches_listing4_shape() {
        let spec = spec_for(WC_COMBINE);
        assert_eq!(spec.name, "gpu_combiner");
        let names: Vec<&str> = spec.params.iter().map(|p| p.name.as_str()).collect();
        for expect in ["keys", "values", "opKey", "opVal", "indexArray", "size"] {
            assert!(names.contains(&expect), "missing param {expect}");
        }
        // Firstprivate staging params, as in Listing 4.
        assert!(names.contains(&"prevWordFP"));
        assert!(names.contains(&"countFP"));
    }

    #[test]
    fn combiner_private_arrays_go_to_shared_memory() {
        let spec = spec_for(WC_COMBINE);
        let pw = spec
            .privates
            .iter()
            .find(|p| p.original == "prevWord")
            .unwrap();
        assert!(pw.in_shared_mem);
        assert!(pw.firstprivate_init);
        assert_eq!(pw.elems, 30);
        let count = spec
            .privates
            .iter()
            .find(|p| p.original == "count")
            .unwrap();
        assert!(!count.in_shared_mem); // scalars stay in registers
    }

    #[test]
    fn combiner_io_replacement() {
        let spec = spec_for(WC_COMBINE);
        let mut calls = Vec::new();
        let tmp = [spec.body.clone()];
        walk_stmts(&tmp, &mut |s| {
            walk_exprs(s, &mut |e| {
                if let Expr::Call(n, _) = e {
                    calls.push(n.clone());
                }
            });
        });
        assert!(calls.contains(&"getKV".to_string()));
        assert!(calls.contains(&"storeKV".to_string()));
        assert!(calls.contains(&"strcmpGPU".to_string()));
        assert!(calls.contains(&"strcpyGPU".to_string()));
    }

    #[test]
    fn launch_clauses_respected() {
        let src = r#"
int main() {
  char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) blocks(96) threads(256) kvpairs(4)
  while (getline(&word, 0, stdin) != -1) { one = 1; printf("%s\t%d\n", word, one); }
}
"#;
        let spec = spec_for(src);
        assert_eq!(spec.blocks, 96);
        assert_eq!(spec.threads, 256);
        assert_eq!(spec.kvpairs_hint, Some(4));
    }

    #[test]
    fn default_launch_geometry() {
        let spec = spec_for(WC_MAP);
        assert_eq!(spec.blocks, DEFAULT_BLOCKS);
        assert_eq!(spec.threads, DEFAULT_THREADS);
    }

    #[test]
    fn texture_params_recorded() {
        let src = r#"
int main() {
  double centroids[64]; char word[30]; int one;
  #pragma mapreduce mapper key(word) value(one) texture(centroids)
  while (getline(&word, 0, stdin) != -1) { one = centroids[0] > 0.5; printf("x\t1\n"); }
}
"#;
        let spec = spec_for(src);
        assert_eq!(spec.textures, vec!["centroids"]);
        assert!(spec
            .params
            .iter()
            .any(|p| matches!(&p.origin, ParamOrigin::TextureArray(n) if n == "centroids")));
    }
}
