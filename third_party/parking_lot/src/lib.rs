//! Offline stand-in for `parking_lot`: thin wrappers over the std sync
//! primitives with parking_lot's non-poisoning API (`lock()`, `read()`,
//! `write()` return guards directly).

use std::sync;

/// Mutex with parking_lot's panic-safe `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poison state is ignored, as in parking_lot).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-safe `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let r = RwLock::new(vec![1, 2]);
        r.write().push(3);
        assert_eq!(r.read().len(), 3);
    }
}
