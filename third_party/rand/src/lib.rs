//! Offline stand-in for `rand` 0.8: `StdRng`, `SeedableRng`, and the
//! `Rng` methods this workspace calls (`gen`, `gen_range` over integer
//! and float ranges). The generator is xoshiro256**, seeded via
//! splitmix64 — deterministic across platforms, which is what the
//! simulation relies on (seeds are part of experiment configs).
//!
//! Note the stream differs from the real `rand::rngs::StdRng` (ChaCha12),
//! so synthetic corpora differ byte-for-byte from builds using crates.io
//! rand — fine for this repo, where only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of `Self` from raw generator output.
pub trait Standard: Sized {
    /// Map 64 random bits to a value.
    fn from_random_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_random_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_random_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_random_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_random_bits(bits: u64) -> $t { bits as $t }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over half-open / inclusive bounds (subset
/// of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                lo + <$t as Standard>::from_random_bits(rng.next_u64()) * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A range that can be sampled uniformly (subset of `rand`'s
/// `SampleRange`). Single generic impls keep integer-literal type
/// inference working (`rng.gen_range(1..=5)` defaults to `i32`).
pub trait SampleRange<T> {
    /// Draw a value from the range using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Core random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random_bits(self.next_u64())
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — the stub's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(4..=12);
            assert!((4..=12).contains(&x));
            let y = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
