//! Offline stand-in for `proptest`: deterministic randomized testing with
//! the subset of the API this workspace uses — the `proptest!` macro,
//! integer-range and `any::<T>()` strategies, `collection::vec`, tuple
//! strategies, a `[chars]{m,n}` string-regex subset, and the
//! `prop_assert*` macros. Each property runs a fixed number of seeded
//! cases (no shrinking).

/// Deterministic test RNG (splitmix64).
pub mod test_runner {
    /// Splitmix64-based RNG; each test case reseeds deterministically.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// New RNG from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` — the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// String strategy from a `[chars]{m,n}` regex subset. Supports one
    /// character class (literal chars and `a-z` ranges) with a `{m,n}`,
    /// `{n}`, `*`, or `+` repetition. Anything else panics — extend the
    /// stub if a test needs more.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy in stub proptest: {self:?}"));
            let n = min + rng.below((max - min + 1) as u64) as usize;
            (0..n)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rep) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i], cs[i + 2]);
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let (min, max) = match rep {
            "*" => (0, 16),
            "+" => (1, 16),
            "" => (1, 1),
            _ => {
                let body = rep.strip_prefix('{')?.strip_suffix('}')?;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
        };
        if max < min {
            return None;
        }
        Some((chars, min, max))
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub use strategy::{any, Arbitrary, Strategy};

/// Number of cases each property runs (the real proptest defaults to 256;
/// 64 keeps `cargo test` fast while still exploring the domain).
pub const CASES: u64 = 64;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics with case context in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        0xC0FF_EE00u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn string_regex_subset(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn tuples_and_any(pair in (crate::collection::vec(any::<u8>(), 0..5), 1u64..9)) {
            prop_assert!(pair.0.len() < 5);
            prop_assert!((1..9).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let gen = |seed| {
            let mut rng = crate::test_runner::TestRng::new(seed);
            crate::strategy::Strategy::generate(&(0u64..1000), &mut rng)
        };
        assert_eq!(gen(42), gen(42));
    }
}
