//! Offline stand-in for the `bytes` crate: a cheaply clonable,
//! reference-counted immutable byte buffer covering the API surface this
//! workspace uses (`copy_from_slice`, `From<Vec<u8>>`, deref to `[u8]`).

use std::ops::Deref;
use std::sync::Arc;

/// Reference-counted immutable byte buffer; `clone` is O(1).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_deref() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
        let v = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&v[..], &[1, 2, 3]);
    }
}
