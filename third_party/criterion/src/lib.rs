//! Offline stand-in for `criterion`: runs each benchmark closure a small
//! number of times and prints mean wall-clock time. No statistics, no
//! warm-up control, no HTML reports — enough for the workspace's
//! `[[bench]]` targets to build and produce indicative numbers offline.
//!
//! Two environment knobs support the repo's perf harness
//! (`scripts/bench.sh`):
//!
//! * `CRITERION_STUB_ITERS` — overrides every benchmark's iteration
//!   count (quick mode for CI);
//! * `CRITERION_STUB_LOG` — append one JSON line
//!   `{"id": "...", "mean_s": ..., "iters": ...}` per benchmark to the
//!   given file, for downstream summarizers (`--bin benchsum`).

use std::io::Write;
use std::time::Instant;

/// Default iterations per benchmark when neither [`sample_size`] nor the
/// `CRITERION_STUB_ITERS` override applies (criterion samples adaptively).
///
/// [`sample_size`]: BenchmarkGroup::sample_size
const DEFAULT_ITERS: u32 = 10;

/// Iterations to run: env override, else the group's sample size, else
/// the default.
fn effective_iters(sample_size: Option<u32>) -> u32 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .or(sample_size)
        .unwrap_or(DEFAULT_ITERS)
}

/// Report one finished benchmark: print it, and append to the JSON-lines
/// log when `CRITERION_STUB_LOG` is set.
fn report(id: &str, mean_s: f64, iters: u32) {
    println!("bench {id}: {:.3} ms/iter", mean_s * 1e3);
    if let Ok(path) = std::env::var("CRITERION_STUB_LOG") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": {id:?}, \"mean_s\": {mean_s:?}, \"iters\": {iters}}}"
            );
        }
    }
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name plus parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    elapsed_s: f64,
}

impl Bencher {
    /// Time `routine` over this benchmark's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_s = start.elapsed().as_secs_f64() / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: Option<u32>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let iters = effective_iters(self.sample_size);
        let mut b = Bencher {
            iters,
            elapsed_s: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.elapsed_s, iters);
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.name.clone(), |b| f(b, input));
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), f);
        self
    }

    /// Number of iterations for benchmarks in this group (criterion's
    /// sample count; here used directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some((n as u32).max(1));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = effective_iters(None);
        let mut b = Bencher {
            iters,
            elapsed_s: 0.0,
        };
        f(&mut b);
        report(&id.into(), b.elapsed_s, iters);
        self
    }
}

/// Opaque value barrier (best-effort without unsafe).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness-less bench binaries with
            // `--test`; there is nothing to test here, so exit quickly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
