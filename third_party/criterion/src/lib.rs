//! Offline stand-in for `criterion`: runs each benchmark closure a small
//! fixed number of times and prints mean wall-clock time. No statistics,
//! no warm-up control, no HTML reports — enough for the workspace's
//! `[[bench]]` targets to build and produce indicative numbers offline.

use std::time::Instant;

/// Iterations per benchmark in the stub (criterion samples adaptively).
const ITERS: u32 = 10;

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name plus parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    elapsed_s: f64,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_s = start.elapsed().as_secs_f64() / ITERS as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_s: 0.0 };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.3} ms/iter",
            self.name,
            id.name,
            b.elapsed_s * 1e3
        );
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_s: 0.0 };
        f(&mut b);
        println!(
            "bench {}/{}: {:.3} ms/iter",
            self.name,
            id.into(),
            b.elapsed_s * 1e3
        );
        self
    }

    /// Accepted and ignored in the stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_s: 0.0 };
        f(&mut b);
        println!("bench {}: {:.3} ms/iter", id.into(), b.elapsed_s * 1e3);
        self
    }
}

/// Opaque value barrier (best-effort without unsafe).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness-less bench binaries with
            // `--test`; there is nothing to test here, so exit quickly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
