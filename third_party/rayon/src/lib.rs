//! Offline stand-in for `rayon`: the parallel-iterator entry points this
//! workspace uses, executed sequentially. The gpusim block loop is the
//! only consumer (`into_par_iter().enumerate().map().collect()`); running
//! it sequentially changes wall-clock time but not simulated results —
//! the cycle cost model is deterministic per block.

/// Sequential `prelude` mirroring `rayon::prelude`.
pub mod prelude {
    /// Conversion into a (sequentially executed) "parallel" iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Begin iteration; sequential in the stub.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'a, T> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential stand-ins for slice parallel iteration.
    pub trait ParallelSlice<T> {
        /// `par_iter` — sequential in the stub.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let v = vec![1, 2, 3];
        let out: Vec<(usize, i32)> = v
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| (i, x * 2))
            .collect();
        assert_eq!(out, vec![(0, 2), (1, 4), (2, 6)]);
    }
}
