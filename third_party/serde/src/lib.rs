//! Offline stand-in for `serde`: marker traits plus no-op derive macros.
//!
//! The container building this repository has no network access and no
//! crate cache, so the real serde cannot be fetched. The workspace only
//! *derives* `Serialize`/`Deserialize` (nothing serializes — there is no
//! serde_json dependency), so empty derives keep every annotation
//! compiling without behavioral change. Swap back to crates.io serde by
//! deleting the `[patch.crates-io]` entry in the workspace Cargo.toml.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the stub).
pub trait SerializeTrait {}

/// Marker counterpart of `serde::Deserialize` (no methods in the stub).
pub trait DeserializeTrait {}
