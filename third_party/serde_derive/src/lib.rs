//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace derives serde traits on many types but never calls a
//! serializer (there is no `serde_json` in the tree), so in the offline
//! build the derives expand to nothing. If real serialization lands,
//! replace these stubs with the actual serde_derive from crates.io.

use proc_macro::TokenStream;

/// Accepts and ignores the input; emits no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and ignores the input; emits no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
