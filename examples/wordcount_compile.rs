//! Inspect the full compiler pipeline on the paper's Listings 1 and 2:
//! Algorithm 1 variable classification, kernel extraction, generated
//! CUDA-like code, and the Fig. 1 host driver.
//!
//! Run with: `cargo run --example wordcount_compile`
use hetero_cc::codegen;

fn main() {
    let app = hetero_apps::app_by_code("WC").unwrap();
    let map = heterodoop::compile(app.mapper_source()).unwrap();
    let comb = heterodoop::compile(app.combiner_source().unwrap()).unwrap();

    println!("== Algorithm 1: variable placements (mapper) ==");
    for (var, placement) in &map.analysis.regions[0].placements {
        println!("  {var:<12} -> {placement:?}");
    }
    println!("\n== kernel parameters ==");
    print!("{}", codegen::describe_params(&map.kernels[0]));

    println!("\n== gpu_mapper (compare paper Listing 3) ==");
    print!("{}", map.sources[0]);
    println!("\n== gpu_combiner (compare paper Listing 4) ==");
    print!("{}", comb.sources[0]);

    println!("\n== host driver (compare paper Fig. 1) ==");
    print!(
        "{}",
        codegen::host_driver_source(&map.kernels[0], comb.kernels.first())
    );
}
