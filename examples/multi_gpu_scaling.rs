//! Fig. 4b-style multi-GPU scaling on Cluster2: BlackScholes with 1-3
//! M2090s per node under both schedulers.
//!
//! Run with: `cargo run --example multi_gpu_scaling`
use hetero_cluster::Scheduler;
use hetero_runtime::OptFlags;
use heterodoop::{job_speedup, measure_task, Preset};

fn main() {
    let app = hetero_apps::app_by_code("BS").unwrap();
    let p = Preset::cluster2();
    let m = measure_task(app.as_ref(), &p, OptFlags::all(), 3000, 1).unwrap();
    println!("BS single-task speedup on {}: {:.1}x", p.name, m.speedup);
    let n_maps = app.spec().map_tasks.1.unwrap();
    println!("\n{:<8}{:>12}{:>12}", "GPUs", "GPU-first", "tail");
    for g in 1..=3 {
        let gf = job_speedup(app.as_ref(), &p, Scheduler::GpuFirst, g, n_maps, &m);
        let ts = job_speedup(app.as_ref(), &p, Scheduler::TailScheduling, g, n_maps, &m);
        println!("{g:<8}{:>12.2}{:>12.2}", gf.speedup, ts.speedup);
    }
    println!("\n(the paper's Fig. 4b shows speedups scaling with GPU count)");
}
