//! Run the Kmeans benchmark end-to-end on the simulated Cluster1:
//! measure a task, build the Table 2 job, and compare CPU-only Hadoop
//! against HeteroDoop with tail scheduling. Also demonstrates why KM
//! cannot run on Cluster2 (GPU out-of-memory, Fig. 4b).
//!
//! Run with: `cargo run --example kmeans_cluster`
use hetero_cluster::Scheduler;
use hetero_gpusim::Device;
use hetero_runtime::task::run_gpu_task;
use hetero_runtime::OptFlags;
use heterodoop::{job_speedup, measure_task, task_config, Preset};

fn main() {
    let app = hetero_apps::app_by_code("KM").unwrap();
    let p = Preset::cluster1();
    let m = measure_task(app.as_ref(), &p, OptFlags::all(), 3000, 1).unwrap();
    println!("KM single-task speedup on {}: {:.1}x", p.name, m.speedup);
    println!("GPU task stages:");
    for (name, t) in m.gpu.stages() {
        println!("  {name:<14}{:>8.3} ms", t * 1e3);
    }

    let n_maps = app.spec().map_tasks.0;
    let cmp = job_speedup(app.as_ref(), &p, Scheduler::TailScheduling, 1, n_maps, &m);
    println!(
        "\njob ({} map tasks): CPU-only {:.0}s, HeteroDoop+tail {:.0}s -> {:.2}x",
        n_maps, cmp.cpu_only_s, cmp.hetero_s, cmp.speedup
    );
    println!("GPU ran {} of {} map tasks", cmp.stats.gpu_tasks(), n_maps);

    // Why Fig. 4b has no KM bar: the working set exceeds the M2090.
    let p2 = Preset::cluster2();
    let big = app.generate_split(40_000, 1);
    let dev = Device::new(p2.gpu.clone());
    let cfg = task_config(app.as_ref(), &p2, OptFlags::all());
    match run_gpu_task(&dev, &p2.env, &big, app.mapper().as_ref(), None, &cfg) {
        Err(e) => println!("\nKM on Cluster2 ({}): {e}", p2.gpu.name),
        Ok(_) => println!("\nKM unexpectedly fit on Cluster2"),
    }
}
