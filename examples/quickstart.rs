//! Quickstart: compile the paper's Listing-1 wordcount source with the
//! HeteroDoop directive compiler, run it as a GPU task on the simulated
//! Tesla K40, and compare against the CPU streaming path.
//!
//! Run with: `cargo run --example quickstart`
use hetero_runtime::OptFlags;
use heterodoop::{measure_task, InterpMapper, Preset};
use std::sync::Arc;

fn main() {
    // 1. Compile the annotated sequential C program (paper Listing 1).
    let app = hetero_apps::app_by_code("WC").unwrap();
    let compiled = heterodoop::compile(app.mapper_source()).unwrap();
    println!("== generated CUDA-like kernel ==\n{}", compiled.sources[0]);

    // 2. The same source runs functionally through the interpreter.
    let mapper = InterpMapper::new(Arc::new(compiled));
    let mut pairs = Vec::new();
    struct Collect<'a>(&'a mut Vec<(Vec<u8>, Vec<u8>)>);
    impl hetero_runtime::Emit for Collect<'_> {
        fn emit(&mut self, k: &[u8], v: &[u8]) -> bool {
            self.0.push((k.to_vec(), v.to_vec()));
            true
        }
        fn charge(&mut self, _: hetero_runtime::OpCount) {}
        fn read_ro(&mut self, _: u64) {}
    }
    hetero_runtime::Mapper::map(
        &mapper,
        b"the quick brown fox the",
        &mut Collect(&mut pairs),
    );
    println!("== mapped 'the quick brown fox the' ==");
    for (k, v) in &pairs {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    // 3. Measure one fileSplit as a GPU task vs a CPU-core task.
    let preset = Preset::cluster1();
    let m = measure_task(app.as_ref(), &preset, OptFlags::all(), 2000, 42).unwrap();
    println!("\n== single-task measurement (Cluster1, Tesla K40) ==");
    println!("GPU task: {:.3} ms", m.gpu.total_s() * 1e3);
    println!("CPU task: {:.3} ms", m.cpu.total_s() * 1e3);
    println!("speedup : {:.2}x over one CPU core", m.speedup);
}
