//! Reproduce the Fig. 3 schedule and study tail scheduling across GPU
//! speedups: when does forcing the tail onto the GPU pay off?
//!
//! Run with: `cargo run --example scheduler_study`
use hetero_cluster::{simulate, ClusterConfig, FaultPlan, JobSpec, Scheduler, TraceConfig};

fn main() {
    // The paper's worked example: 19 tasks, 6x GPU, 2 CPU slots.
    let cfg = |s| ClusterConfig {
        num_slaves: 1,
        nodes_per_rack: 1,
        map_slots_per_node: 2,
        reduce_slots_per_node: 0,
        gpus_per_node: 1,
        heartbeat_s: 0.01,
        scheduler: s,
        reduce_start_frac: 0.2,
        speculative: false,
        speculative_lag: 0.2,
        shuffle_bw: 1e9,
        max_attempts: 4,
        heartbeat_timeout_s: 3.0,
        jobtracker_recovery_s: 2.0,
        faults: FaultPlan::none(),
        trace: TraceConfig::default(),
    };
    let job = JobSpec::uniform("fig3", 19, 1, 1, 6.0, 1.0);
    let gf = simulate(&cfg(Scheduler::GpuFirst), &job);
    let ts = simulate(&cfg(Scheduler::TailScheduling), &job);
    println!(
        "Fig. 3 scenario — GPU-first: {:.1}s, tail: {:.1}s (paper: 18 vs 15)",
        gf.makespan_s, ts.makespan_s
    );

    // Sweep the GPU speedup: the tail gain grows with the speed gap.
    println!(
        "\n{:<10}{:>12}{:>12}{:>10}",
        "speedup", "GPU-first", "tail", "gain"
    );
    for s in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let mut c = ClusterConfig::small(8, Scheduler::GpuFirst);
        c.map_slots_per_node = 8;
        let job = JobSpec::uniform("sweep", 400, 8, 2, 24.0, 24.0 / s);
        let g = simulate(&c, &job).makespan_s;
        let mut ct = c.clone();
        ct.scheduler = Scheduler::TailScheduling;
        let t = simulate(&ct, &job).makespan_s;
        println!("{s:<10}{g:>12.1}{t:>12.1}{:>10.2}", g / t);
    }
}
